package faultinject

import (
	"strings"
	"testing"
	"time"
)

func TestParseClusterPlan(t *testing.T) {
	p, err := ParseClusterPlan("kill=0@300ms+400ms, partition=1@500ms+400ms, stall=2@0ms+1s, flap=0@1s+600ms, stall-for=5ms, flap-period=40ms, seed=7")
	if err != nil {
		t.Fatalf("ParseClusterPlan: %v", err)
	}
	if len(p.Events) != 4 {
		t.Fatalf("parsed %d events, want 4", len(p.Events))
	}
	want := []ClusterEvent{
		{ClusterKill, 0, 300 * time.Millisecond, 400 * time.Millisecond},
		{ClusterPartition, 1, 500 * time.Millisecond, 400 * time.Millisecond},
		{ClusterStall, 2, 0, time.Second},
		{ClusterFlap, 0, time.Second, 600 * time.Millisecond},
	}
	for i, w := range want {
		if p.Events[i] != w {
			t.Fatalf("event %d = %+v, want %+v", i, p.Events[i], w)
		}
	}
	if p.StallFor != 5*time.Millisecond || p.FlapPeriod != 40*time.Millisecond || p.Seed != 7 {
		t.Fatalf("knobs wrong: %+v", p)
	}
	if p.Horizon() != 1600*time.Millisecond {
		t.Fatalf("Horizon = %v, want 1.6s", p.Horizon())
	}

	if empty, err := ParseClusterPlan("  "); err != nil || len(empty.Events) != 0 || empty.StallFor <= 0 {
		t.Fatalf("empty spec must parse to a defaulted all-clean plan, got %+v, %v", empty, err)
	}

	for _, bad := range []string{
		"boom=1@0s+1s",        // unknown fault
		"kill=x@0s+1s",        // bad shard
		"kill=-1@0s+1s",       // negative shard
		"kill=0@0s",           // missing duration
		"kill=0+1s",           // missing @
		"kill=0@0s+0s",        // zero duration
		"stall-for=-1ms",      // negative knob
		"seed=nope",           // bad seed
		"kill",                // not key=value
		"flap-period=banana",  // bad duration
		"partition=1@-5ms+1s", // negative start
	} {
		if _, err := ParseClusterPlan(bad); err == nil {
			t.Errorf("ParseClusterPlan(%q) accepted garbage", bad)
		}
	}
}

func TestClusterPlanTimeline(t *testing.T) {
	p, err := ParseClusterPlan("kill=0@40ms+80ms,partition=1@60ms+80ms,stall=2@0ms+250ms")
	if err != nil {
		t.Fatal(err)
	}
	if p.ActiveFault(0, time.Now()) != ClusterNone {
		t.Fatal("unarmed plan must read all-clean")
	}
	base := time.Unix(1000, 0)
	p.Arm(base)
	if !p.Armed() {
		t.Fatal("Armed false after Arm")
	}
	at := func(d time.Duration) time.Time { return base.Add(d) }
	cases := []struct {
		d     time.Duration
		shard int
		want  ClusterFault
	}{
		{10 * time.Millisecond, 0, ClusterNone},
		{40 * time.Millisecond, 0, ClusterKill},
		{119 * time.Millisecond, 0, ClusterKill},
		{120 * time.Millisecond, 0, ClusterNone},
		{59 * time.Millisecond, 1, ClusterNone},
		{100 * time.Millisecond, 1, ClusterPartition},
		{140 * time.Millisecond, 1, ClusterNone},
		{0, 2, ClusterStall},
		{249 * time.Millisecond, 2, ClusterStall},
		{250 * time.Millisecond, 2, ClusterNone},
		{100 * time.Millisecond, 3, ClusterNone}, // unscheduled shard
	}
	for _, c := range cases {
		if got := p.ActiveFault(c.shard, at(c.d)); got != c.want {
			t.Errorf("ActiveFault(shard %d, t=%v) = %v, want %v", c.shard, c.d, got, c.want)
		}
	}
	if p.Horizon() != 250*time.Millisecond {
		t.Fatalf("Horizon = %v, want 250ms", p.Horizon())
	}
}

// TestClusterPlanFlap: inside its window a flap must alternate between kill
// and clean with the configured half-period, deterministically for a fixed
// seed, and resolve only to kill/none (never ClusterFlap itself).
func TestClusterPlanFlap(t *testing.T) {
	p, err := ParseClusterPlan("flap=0@0ms+400ms,flap-period=20ms,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(2000, 0)
	p.Arm(base)
	var seq []ClusterFault
	kills, cleans, transitions := 0, 0, 0
	for ms := 0; ms < 400; ms++ {
		f := p.ActiveFault(0, base.Add(time.Duration(ms)*time.Millisecond))
		if f != ClusterKill && f != ClusterNone {
			t.Fatalf("flap resolved to %v at %dms, want kill or none", f, ms)
		}
		if f == ClusterKill {
			kills++
		} else {
			cleans++
		}
		if len(seq) > 0 && seq[len(seq)-1] != f {
			transitions++
		}
		seq = append(seq, f)
	}
	if kills == 0 || cleans == 0 {
		t.Fatalf("flap never alternated: %d kills, %d cleans", kills, cleans)
	}
	// 400ms of 20ms half-cycles: about 19 transitions, allow phase slack.
	if transitions < 10 {
		t.Fatalf("only %d flap transitions over 400ms with a 20ms half-period", transitions)
	}

	// Replaying the same plan must produce the identical sequence.
	p2, _ := ParseClusterPlan("flap=0@0ms+400ms,flap-period=20ms,seed=9")
	p2.Arm(base)
	for ms := range seq {
		if got := p2.ActiveFault(0, base.Add(time.Duration(ms)*time.Millisecond)); got != seq[ms] {
			t.Fatalf("flap not reproducible at %dms: %v vs %v", ms, got, seq[ms])
		}
	}
	// Outside the window: clean.
	if p.ActiveFault(0, base.Add(500*time.Millisecond)) != ClusterNone {
		t.Fatal("flap active past its window")
	}
}

func TestClusterFaultStrings(t *testing.T) {
	for f, want := range map[ClusterFault]string{
		ClusterNone: "none", ClusterKill: "kill", ClusterStall: "stall",
		ClusterPartition: "partition", ClusterFlap: "flap",
	} {
		if f.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(f), f.String(), want)
		}
	}
	if s := ClusterFault(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown fault string %q", s)
	}
}
