package order

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/cmatrix"
	"repro/internal/constellation"
	"repro/internal/decoder"
	"repro/internal/mimo"
	"repro/internal/rng"
	"repro/internal/sphere"
)

func isPermutation(p []int, n int) bool {
	if len(p) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range p {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func TestPermutationValidity(t *testing.T) {
	r := rng.New(1)
	h := channel.Rayleigh(r, 8, 6)
	for _, s := range []Strategy{None, ByColumnNorm, SQRD} {
		perm, err := Permutation(s, h)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !isPermutation(perm, 6) {
			t.Fatalf("%v: %v is not a permutation", s, perm)
		}
	}
	if _, err := Permutation(Strategy(42), h); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestNoneIsIdentity(t *testing.T) {
	h := channel.Rayleigh(rng.New(2), 5, 5)
	perm, err := Permutation(None, h)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range perm {
		if p != i {
			t.Fatalf("None permuted: %v", perm)
		}
	}
}

func TestByColumnNormOrdering(t *testing.T) {
	// Build a matrix with known column norms 3 > 1 > 2 (indices 0,1,2).
	h := cmatrix.NewMatrix(3, 3)
	h.Set(0, 0, 3)
	h.Set(1, 1, 1)
	h.Set(2, 2, 2)
	perm, err := Permutation(ByColumnNorm, h)
	if err != nil {
		t.Fatal(err)
	}
	// Ascending norms: column 1 (norm 1), column 2 (norm 4), column 0 (9).
	want := []int{1, 2, 0}
	for i := range want {
		if perm[i] != want[i] {
			t.Fatalf("perm = %v, want %v", perm, want)
		}
	}
}

func TestSQRDOnOrthogonalMatchesNormSort(t *testing.T) {
	// For orthogonal columns, residual norms never change, so SQRD reduces
	// to the plain norm sort.
	h := cmatrix.NewMatrix(4, 3)
	h.Set(0, 0, 2)
	h.Set(1, 1, 0.5)
	h.Set(2, 2, 1)
	sqrd, err := Permutation(SQRD, h)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := Permutation(ByColumnNorm, h)
	if err != nil {
		t.Fatal(err)
	}
	for i := range norm {
		if sqrd[i] != norm[i] {
			t.Fatalf("SQRD %v != norm sort %v on orthogonal columns", sqrd, norm)
		}
	}
}

func TestPermuteColumns(t *testing.T) {
	h := cmatrix.FromSlice(2, 3, []complex128{1, 2, 3, 4, 5, 6})
	p := PermuteColumns(h, []int{2, 0, 1})
	want := cmatrix.FromSlice(2, 3, []complex128{3, 1, 2, 6, 4, 5})
	if !p.EqualApprox(want, 0) {
		t.Fatalf("PermuteColumns = %v", p)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad permutation length did not panic")
		}
	}()
	PermuteColumns(h, []int{0, 1})
}

func TestOrderedDecoderExactness(t *testing.T) {
	// Ordering must not change the detected vector (the problem is
	// permutation-invariant and the inner decoder is exact).
	cfg := mimo.Config{Tx: 6, Rx: 6, Mod: constellation.QAM4}
	cons := constellation.New(cfg.Mod)
	r := rng.New(3)
	plain := sphere.MustNew(sphere.Config{Const: cons, Strategy: sphere.SortedDFS})
	for _, s := range []Strategy{None, ByColumnNorm, SQRD} {
		ordered := NewDecoder(sphere.MustNew(sphere.Config{Const: cons, Strategy: sphere.SortedDFS}), s)
		for trial := 0; trial < 15; trial++ {
			f, err := mimo.GenerateFrame(r, cfg, 8)
			if err != nil {
				t.Fatal(err)
			}
			want, err := plain.Decode(f.H, f.Y, f.NoiseVar)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ordered.Decode(f.H, f.Y, f.NoiseVar)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.Metric-want.Metric) > 1e-6*(1+want.Metric) {
				t.Fatalf("%v: metric %v vs %v", s, got.Metric, want.Metric)
			}
			for i := range want.SymbolIdx {
				if got.SymbolIdx[i] != want.SymbolIdx[i] {
					t.Fatalf("%v trial %d: symbols differ at antenna %d", s, trial, i)
				}
			}
		}
	}
}

func TestOrderingReducesNodesAtLowSNR(t *testing.T) {
	// The reason ordering exists: fewer expansions on average. Compare
	// aggregate node counts with and without SQRD at a stressed operating
	// point.
	cfg := mimo.Config{Tx: 10, Rx: 10, Mod: constellation.QAM4}
	cons := constellation.New(cfg.Mod)
	mk := func(s Strategy) func() decoder.Decoder {
		return func() decoder.Decoder {
			inner := sphere.MustNew(sphere.Config{Const: cons, Strategy: sphere.SortedDFS})
			if s == None {
				return inner
			}
			return NewDecoder(inner, s)
		}
	}
	base, err := mimo.RunParallel(cfg, 2, 300, 0, mk(None), 77)
	if err != nil {
		t.Fatal(err)
	}
	sqrd, err := mimo.RunParallel(cfg, 2, 300, 0, mk(SQRD), 77)
	if err != nil {
		t.Fatal(err)
	}
	if sqrd.Counters.NodesExpanded >= base.Counters.NodesExpanded {
		t.Fatalf("SQRD did not reduce nodes: %d vs %d",
			sqrd.Counters.NodesExpanded, base.Counters.NodesExpanded)
	}
	// And it must not change the error rate (exactness).
	if sqrd.BitErrors != base.BitErrors {
		t.Fatalf("SQRD changed bit errors: %d vs %d", sqrd.BitErrors, base.BitErrors)
	}
}

func TestDecoderName(t *testing.T) {
	cons := constellation.New(constellation.QAM4)
	d := NewDecoder(sphere.MustNew(sphere.Config{Const: cons}), SQRD)
	if d.Name() != "SD-SortedDFS+SQRD" {
		t.Fatalf("name %q", d.Name())
	}
}

func TestDecoderPropagatesErrors(t *testing.T) {
	cons := constellation.New(constellation.QAM4)
	d := NewDecoder(sphere.MustNew(sphere.Config{Const: cons}), SQRD)
	h := channel.Rayleigh(rng.New(4), 4, 4)
	if _, err := d.Decode(h, make(cmatrix.Vector, 3), 0.1); err == nil {
		t.Fatal("dimension error not propagated")
	}
	bad := &Decoder{Inner: sphere.MustNew(sphere.Config{Const: cons}), Strategy: Strategy(99)}
	if _, err := bad.Decode(h, make(cmatrix.Vector, 4), 0.1); err == nil {
		t.Fatal("unknown strategy not rejected at decode time")
	}
}

func TestSQRDRankDeficientDoesNotPanic(t *testing.T) {
	// Two identical columns: SQRD must still return a valid permutation.
	h := cmatrix.FromSlice(3, 2, []complex128{1, 1, 2, 2, 3, 3})
	perm, err := Permutation(SQRD, h)
	if err != nil {
		t.Fatal(err)
	}
	if !isPermutation(perm, 2) {
		t.Fatalf("invalid permutation %v", perm)
	}
}
