// Package order implements detection-ordering preprocessing for sphere
// decoding: permuting the transmit streams before the QR step so the tree's
// top levels (decided first) carry the most reliable symbols. Better
// ordering means the first depth-first leaf lands closer to the ML point,
// the radius shrinks sooner, and fewer nodes are expanded — an optimization
// orthogonal to the paper's pipeline work and a standard companion to
// Schnorr–Euchner search (Wübben et al.'s sorted QR decomposition).
//
// The package provides two orderings plus a transparent decoder wrapper
// that permutes the channel columns, runs any inner detector, and
// un-permutes the result. The wrapper is exact: the optimization problem is
// invariant under column permutation.
package order

import (
	"fmt"
	"sort"

	"repro/internal/cmatrix"
	"repro/internal/decoder"
)

// Strategy selects the ordering heuristic.
type Strategy int

const (
	// None applies no reordering (identity permutation).
	None Strategy = iota
	// ByColumnNorm sorts transmit streams by ascending channel-column
	// norm, so the strongest stream sits at the last column — the first
	// tree level decided.
	ByColumnNorm
	// SQRD is the sorted QR decomposition: greedy minimum-residual-norm
	// column pivoting during modified Gram–Schmidt, which accounts for the
	// interference already cancelled at each level (stronger than the
	// plain norm sort).
	SQRD
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case None:
		return "none"
	case ByColumnNorm:
		return "column-norm"
	case SQRD:
		return "SQRD"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Permutation returns the column order chosen by the strategy for channel
// matrix h: perm[i] is the original antenna index placed at column i.
func Permutation(s Strategy, h *cmatrix.Matrix) ([]int, error) {
	m := h.Cols
	perm := make([]int, m)
	for i := range perm {
		perm[i] = i
	}
	switch s {
	case None:
		return perm, nil
	case ByColumnNorm:
		norms := columnNorms(h)
		sort.SliceStable(perm, func(a, b int) bool { return norms[perm[a]] < norms[perm[b]] })
		return perm, nil
	case SQRD:
		return sqrdPermutation(h), nil
	default:
		return nil, fmt.Errorf("order: unknown strategy %d", s)
	}
}

func columnNorms(h *cmatrix.Matrix) []float64 {
	norms := make([]float64, h.Cols)
	h.ColumnNormsSq(norms)
	return norms
}

// sqrdPermutation runs modified Gram–Schmidt with minimum-residual-norm
// pivoting and returns the resulting column order. Choosing the weakest
// residual column at each early position pushes the strongest (most
// reliable after interference cancellation) streams to the late positions,
// which the tree decides first.
func sqrdPermutation(h *cmatrix.Matrix) []int {
	n, m := h.Rows, h.Cols
	// Working copy of columns.
	cols := make([]cmatrix.Vector, m)
	for j := 0; j < m; j++ {
		col := make(cmatrix.Vector, n)
		for i := 0; i < n; i++ {
			col[i] = h.At(i, j)
		}
		cols[j] = col
	}
	norms := columnNorms(h)
	perm := make([]int, m)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < m; k++ {
		// Pivot: remaining column with the smallest residual norm.
		best := k
		for j := k + 1; j < m; j++ {
			if norms[j] < norms[best] {
				best = j
			}
		}
		cols[k], cols[best] = cols[best], cols[k]
		norms[k], norms[best] = norms[best], norms[k]
		perm[k], perm[best] = perm[best], perm[k]

		// Normalize q_k and orthogonalize the trailing columns.
		rkk := cmatrix.Norm2(cols[k])
		if rkk == 0 {
			continue // rank deficiency: leave the rest untouched
		}
		q := make(cmatrix.Vector, n)
		for i := range q {
			q[i] = cols[k][i] / complex(rkk, 0)
		}
		for j := k + 1; j < m; j++ {
			rkj := cmatrix.Dot(q, cols[j])
			cmatrix.AXPY(-rkj, q, cols[j])
			norms[j] -= real(rkj)*real(rkj) + imag(rkj)*imag(rkj)
			if norms[j] < 0 {
				norms[j] = 0
			}
		}
	}
	return perm
}

// PermuteColumns returns h with columns rearranged so that output column i
// is input column perm[i].
func PermuteColumns(h *cmatrix.Matrix, perm []int) *cmatrix.Matrix {
	if len(perm) != h.Cols {
		panic(fmt.Sprintf("order: permutation length %d for %d columns", len(perm), h.Cols))
	}
	out := cmatrix.NewMatrix(h.Rows, h.Cols)
	for i := 0; i < h.Rows; i++ {
		src := h.Row(i)
		dst := out.Row(i)
		for j, p := range perm {
			dst[j] = src[p]
		}
	}
	return out
}

// Decoder wraps an inner detector with detection ordering. It implements
// decoder.Decoder and is exact whenever the inner detector is.
type Decoder struct {
	Inner    decoder.Decoder
	Strategy Strategy
}

// NewDecoder wraps inner with the given ordering strategy.
func NewDecoder(inner decoder.Decoder, s Strategy) *Decoder {
	return &Decoder{Inner: inner, Strategy: s}
}

// Name implements decoder.Decoder.
func (d *Decoder) Name() string {
	return fmt.Sprintf("%s+%s", d.Inner.Name(), d.Strategy)
}

// Decode implements decoder.Decoder: permute, detect, un-permute.
func (d *Decoder) Decode(h *cmatrix.Matrix, y cmatrix.Vector, noiseVar float64) (*decoder.Result, error) {
	perm, err := Permutation(d.Strategy, h)
	if err != nil {
		return nil, err
	}
	res, err := d.Inner.Decode(PermuteColumns(h, perm), y, noiseVar)
	if err != nil {
		return nil, err
	}
	// Un-permute: detected index i corresponds to original antenna perm[i].
	idx := make([]int, len(res.SymbolIdx))
	syms := make(cmatrix.Vector, len(res.Symbols))
	for i, p := range perm {
		idx[p] = res.SymbolIdx[i]
		syms[p] = res.Symbols[i]
	}
	out := *res
	out.SymbolIdx = idx
	out.Symbols = syms
	// Ordering cost: the column-norm pass (or MGS for SQRD).
	nm := int64(h.Rows) * int64(h.Cols)
	switch d.Strategy {
	case ByColumnNorm:
		out.Counters.OtherFlops += 4 * nm
	case SQRD:
		out.Counters.OtherFlops += 8 * nm * int64(h.Cols)
	}
	return &out, nil
}
