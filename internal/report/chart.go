package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Chart renders the figure as an ASCII scatter chart with a logarithmic
// y-axis — the scale every execution-time and BER figure in the paper uses.
// Each series is drawn with its own marker; zero or negative values (e.g.
// an exactly-zero measured BER) are skipped. width and height are the plot
// area in characters; small values are clamped to a readable minimum.
func (f *Figure) Chart(w io.Writer, width, height int) error {
	if width < 20 {
		width = 20
	}
	if height < 6 {
		height = 6
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

	// Log-range over all positive values.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, v := range s.Values {
			if v <= 0 {
				continue
			}
			l := math.Log10(v)
			if l < lo {
				lo = l
			}
			if l > hi {
				hi = l
			}
		}
	}
	if math.IsInf(lo, 1) {
		return fmt.Errorf("report: no positive values to chart in %q", f.Title)
	}
	if hi-lo < 1e-9 {
		hi = lo + 1 // flat data: give it a decade of headroom
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	xPos := func(i int) int {
		if len(f.X) == 1 {
			return width / 2
		}
		return i * (width - 1) / (len(f.X) - 1)
	}
	yPos := func(v float64) int {
		frac := (math.Log10(v) - lo) / (hi - lo)
		row := int(math.Round(float64(height-1) * (1 - frac)))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		return row
	}
	for si, s := range f.Series {
		m := markers[si%len(markers)]
		for i, v := range s.Values {
			if v <= 0 {
				continue
			}
			grid[yPos(v)][xPos(i)] = m
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  (log %s)\n", f.Title, f.YLabel)
	topLabel := fmt.Sprintf("%.3g", math.Pow(10, hi))
	botLabel := fmt.Sprintf("%.3g", math.Pow(10, lo))
	labelW := len(topLabel)
	if len(botLabel) > labelW {
		labelW = len(botLabel)
	}
	for r, row := range grid {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = pad(topLabel, labelW)
		case height - 1:
			label = pad(botLabel, labelW)
		}
		fmt.Fprintf(&sb, "%s |%s|\n", label, string(row))
	}
	// X axis: first and last tick.
	axis := strings.Repeat(" ", labelW+2)
	first := fmt.Sprintf("%g", f.X[0])
	last := fmt.Sprintf("%g", f.X[len(f.X)-1])
	gap := width - len(first) - len(last)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&sb, "%s%s%s%s  (%s)\n", axis, first, strings.Repeat(" ", gap), last, f.XLabel)
	// Legend.
	for si, s := range f.Series {
		fmt.Fprintf(&sb, "  %c %s\n", markers[si%len(markers)], s.Label)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
