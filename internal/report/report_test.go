package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Demo", "name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRow("beta-long-name", "2")
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "name", "alpha", "beta-long-name", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: every data line has the value column starting at the
	// same offset.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	idx := strings.Index(lines[1], "value")
	if idx < 0 {
		t.Fatal("no header")
	}
	if lines[3][idx:idx+1] != "1" {
		t.Errorf("misaligned column:\n%s", out)
	}
}

func TestTableShortRowsPadded(t *testing.T) {
	tab := NewTable("", "a", "b", "c")
	tab.AddRow("x")
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows[0]) != 3 {
		t.Fatal("row not padded")
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("ignored", "a", "b")
	tab.AddRow("1", "hello, world")
	tab.AddRow("2", `say "hi"`)
	var sb strings.Builder
	if err := tab.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"hello, world"`) {
		t.Errorf("comma not quoted: %s", out)
	}
	if !strings.Contains(out, `"say ""hi"""`) {
		t.Errorf("quote not escaped: %s", out)
	}
	if strings.Contains(out, "ignored") {
		t.Error("CSV should not include the title")
	}
}

func TestFigure(t *testing.T) {
	f := NewFigure("Fig X", "SNR", "time", []float64{4, 8, 12})
	if err := f.Add("CPU", []float64{7, 3, 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("FPGA", []float64{1.4, 0.9, 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("bad", []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	var sb strings.Builder
	if err := f.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Fig X", "CPU", "FPGA", "SNR"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	var csv strings.Builder
	if err := f.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "SNR,CPU,FPGA") {
		t.Errorf("CSV header: %s", csv.String())
	}
	if lines := strings.Count(csv.String(), "\n"); lines != 4 {
		t.Errorf("CSV has %d lines", lines)
	}
}

func TestFormatSI(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.00001: "1.00e-05",
		0.5:     "0.500",
		42:      "42.0",
		12345:   "12345",
	}
	for v, want := range cases {
		if got := FormatSI(v); got != want {
			t.Errorf("FormatSI(%v) = %q, want %q", v, got, want)
		}
	}
	if got := FormatSI(-42); got != "-42.0" {
		t.Errorf("negative: %q", got)
	}
}

func TestFormatMillis(t *testing.T) {
	if got := FormatMillis(0.007); got != "7 ms" {
		t.Errorf("FormatMillis = %q", got)
	}
	if got := FormatMillis(0.0441); got != "44.1 ms" {
		t.Errorf("FormatMillis = %q", got)
	}
}
