// Package report renders the experiment harness's outputs: fixed-width
// ASCII tables in the shape of the paper's Tables I–II, figure data as
// aligned series (one row per SNR point, one column per platform), and CSV
// for external plotting.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned table builder.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Header) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(c, widths[i]))
		}
		sb.WriteString("\n")
	}
	writeRow(t.Header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CSV writes the table as comma-separated values (quoted when needed).
func (t *Table) CSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			parts[i] = c
		}
		_, err := io.WriteString(w, strings.Join(parts, ",")+"\n")
		return err
	}
	if err := writeLine(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}

// Series is one curve of a figure: a label plus y-values aligned with the
// figure's shared x-axis.
type Series struct {
	Label  string
	Values []float64
}

// Figure is the data behind one of the paper's figures: a shared x-axis
// (SNR points) and one series per platform/decoder.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// NewFigure creates a figure with the given axes.
func NewFigure(title, xlabel, ylabel string, x []float64) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel, X: x}
}

// Add appends a series; its length must match the x-axis.
func (f *Figure) Add(label string, values []float64) error {
	if len(values) != len(f.X) {
		return fmt.Errorf("report: series %q has %d values for %d x-points", label, len(values), len(f.X))
	}
	f.Series = append(f.Series, Series{Label: label, Values: values})
	return nil
}

// Render writes the figure as an aligned data table: one row per x point.
func (f *Figure) Render(w io.Writer) error {
	t := NewTable(fmt.Sprintf("%s  [%s vs %s]", f.Title, f.YLabel, f.XLabel))
	t.Header = append(t.Header, f.XLabel)
	for _, s := range f.Series {
		t.Header = append(t.Header, s.Label)
	}
	for i, x := range f.X {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range f.Series {
			row = append(row, FormatSI(s.Values[i]))
		}
		t.AddRow(row...)
	}
	return t.Render(w)
}

// CSV writes the figure data as CSV.
func (f *Figure) CSV(w io.Writer) error {
	t := &Table{Header: append([]string{f.XLabel}, labels(f.Series)...)}
	for i, x := range f.X {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range f.Series {
			row = append(row, fmt.Sprintf("%g", s.Values[i]))
		}
		t.AddRow(row...)
	}
	return t.CSV(w)
}

func labels(ss []Series) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Label
	}
	return out
}

// FormatSI renders a value with a readable number of significant digits,
// using scientific notation for very small magnitudes (BER values).
func FormatSI(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 0:
		return "-" + FormatSI(-v)
	case v < 1e-3:
		return fmt.Sprintf("%.2e", v)
	case v < 10:
		return fmt.Sprintf("%.3f", v)
	case v < 1000:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// FormatMillis renders a duration in seconds as milliseconds, the unit of
// every execution-time figure in the paper.
func FormatMillis(seconds float64) string {
	return fmt.Sprintf("%.3g ms", seconds*1e3)
}
