package report

import (
	"strings"
	"testing"
)

func chartFigure(t *testing.T) *Figure {
	t.Helper()
	f := NewFigure("Demo", "SNR(dB)", "time(ms)", []float64{4, 8, 12, 16, 20})
	if err := f.Add("CPU", []float64{11.7, 4.4, 3.5, 3.4, 3.3}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("FPGA", []float64{2.0, 0.67, 0.47, 0.44, 0.43}); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestChartRenders(t *testing.T) {
	f := chartFigure(t)
	var sb strings.Builder
	if err := f.Chart(&sb, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "CPU", "FPGA", "SNR(dB)", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Axis ticks present.
	if !strings.Contains(out, "4") || !strings.Contains(out, "20") {
		t.Errorf("missing x ticks:\n%s", out)
	}
}

func TestChartOrdering(t *testing.T) {
	// The larger series must plot above the smaller at the same x: find
	// the column of the first x position and compare marker rows.
	f := chartFigure(t)
	var sb strings.Builder
	if err := f.Chart(&sb, 40, 12); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(sb.String(), "\n")
	var starRow, oRow int = -1, -1
	for i, line := range lines {
		bar := strings.IndexByte(line, '|')
		if bar < 0 {
			continue
		}
		// First plotted column is right after the bar.
		if idx := strings.IndexByte(line[bar:], '*'); idx >= 0 && starRow < 0 {
			starRow = i
		}
		if idx := strings.IndexByte(line[bar:], 'o'); idx >= 0 && oRow < 0 {
			oRow = i
		}
	}
	if starRow < 0 || oRow < 0 {
		t.Fatalf("markers not found:\n%s", sb.String())
	}
	if starRow >= oRow {
		t.Fatalf("CPU (row %d) should plot above FPGA (row %d)", starRow, oRow)
	}
}

func TestChartSkipsNonPositive(t *testing.T) {
	f := NewFigure("BER", "SNR", "BER", []float64{4, 8})
	if err := f.Add("SD", []float64{4e-5, 0}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := f.Chart(&sb, 30, 8); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "*") != 2 { // 1 data point + 1 legend marker
		t.Fatalf("zero value should be skipped:\n%s", sb.String())
	}
}

func TestChartAllZeroErrors(t *testing.T) {
	f := NewFigure("empty", "x", "y", []float64{1})
	if err := f.Add("s", []float64{0}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := f.Chart(&sb, 30, 8); err == nil {
		t.Fatal("all-zero chart should error")
	}
}

func TestChartFlatSeries(t *testing.T) {
	f := NewFigure("flat", "x", "y", []float64{1, 2})
	if err := f.Add("s", []float64{5, 5}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := f.Chart(&sb, 30, 8); err != nil {
		t.Fatal(err)
	}
}

func TestChartClampsTinyDimensions(t *testing.T) {
	f := chartFigure(t)
	var sb strings.Builder
	if err := f.Chart(&sb, 1, 1); err != nil {
		t.Fatal(err)
	}
	if len(sb.String()) == 0 {
		t.Fatal("empty chart")
	}
}
