// Package adapt is the online complexity controller behind the DecodePolicy
// API: it watches per-frame SNR estimates, trace-fed search cost (an EWMA of
// expanded nodes per request class), and scheduler queue depth, and emits the
// core.DecodePolicy each request class should decode under next.
//
// The controller realizes the trade-off Dabah et al. describe for
// runtime-tunable sphere decoders: under light load everything runs the exact
// exhaustive pipeline; as cost pressure rises it walks down a ladder of
// cheaper configurations — SNR-scaled initial radius, the real-valued
// Schnorr–Euchner decomposition under the ℓ∞ norm, half-precision GEMM with a
// node budget, fixed-complexity search — before surrendering to the linear
// detector. Degradation is immediate; recovery is hysteresis-gated so a
// saturated queue draining does not make the controller flap.
//
// All decisions are deterministic functions of the observation sequence: one
// mutex orders observations and decisions, and nothing consults time or
// randomness. Replaying the same (scenario, seed, level table) therefore
// replays the same decision sequence — the property the determinism tests
// pin.
package adapt

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/decoder"
	"repro/internal/sphere"
	"repro/internal/trace"
)

// Level is one rung of the degradation ladder: a policy plus the conditions
// under which the controller may select it.
type Level struct {
	// Name labels the level in snapshots, metrics, and decision logs.
	Name string
	// Policy is the DecodePolicy this level decodes under.
	Policy core.DecodePolicy
	// MaxPressure is the highest cost pressure this level serves. The
	// controller picks the first level (in table order) whose MaxPressure
	// admits the current pressure; the last level should be +Inf so some
	// level always matches.
	MaxPressure float64
	// MinSNRdB gates the level on channel quality: below this estimated SNR
	// the level is skipped. Levels that lean on an SNR-scaled radius or a
	// tighter search only pay off when the noise is small enough; at low SNR
	// they retry or mis-decode their savings away. Use -Inf (or zero via
	// DefaultLevels) for unconditional levels.
	MinSNRdB float64
}

// Config parameterizes a Controller.
type Config struct {
	// Levels is the degradation ladder, least degraded first. Required.
	Levels []Level
	// NodeAlpha is the EWMA smoothing factor for per-class node cost
	// (0 < α ≤ 1); 0 defaults to 0.25.
	NodeAlpha float64
	// NodeCeiling normalizes node cost into pressure: an EWMA at the ceiling
	// contributes pressure 1.0. 0 defaults to 1<<20 expansions.
	NodeCeiling float64
	// PriorNodes seeds the node EWMA before a class's first observation.
	// 0 means "assume free until measured".
	PriorNodes float64
	// Hysteresis holds recovery: moving to a less degraded level requires
	// pressure ≤ (1−Hysteresis)·that level's MaxPressure. 0 defaults to 0.1;
	// negative disables.
	Hysteresis float64
}

// Decision is one Decide outcome: the chosen level and the inputs that chose
// it. The fields are plain values so tests can compare decision sequences.
type Decision struct {
	Class    string
	Level    string
	Policy   core.DecodePolicy
	Pressure float64
	SNRdB    float64
}

// classState is the controller's memory of one request class.
type classState struct {
	ewmaNodes float64
	ewmaSNR   float64
	observed  bool
	level     int            // current ladder rung (index into levels)
	decisions map[string]int // level name → times chosen
	quality   map[string]int // decoder.Quality name → frames observed
}

// Controller emits DecodePolicies per request class from online observations.
// All methods are safe for concurrent use; a single mutex serializes them, so
// the decision sequence is a deterministic function of the call sequence.
type Controller struct {
	mu      sync.Mutex
	cfg     Config
	classes map[string]*classState
}

// NewController validates the ladder and builds a controller.
func NewController(cfg Config) (*Controller, error) {
	if len(cfg.Levels) == 0 {
		return nil, fmt.Errorf("adapt: no levels configured")
	}
	seen := make(map[string]bool, len(cfg.Levels))
	for i, l := range cfg.Levels {
		if l.Name == "" {
			return nil, fmt.Errorf("adapt: level %d has no name", i)
		}
		if seen[l.Name] {
			return nil, fmt.Errorf("adapt: duplicate level %q", l.Name)
		}
		seen[l.Name] = true
		if err := l.Policy.Validate(); err != nil {
			return nil, fmt.Errorf("adapt: level %q: %w", l.Name, err)
		}
		if math.IsNaN(l.MaxPressure) || l.MaxPressure < 0 {
			return nil, fmt.Errorf("adapt: level %q: invalid max pressure %v", l.Name, l.MaxPressure)
		}
	}
	if cfg.NodeAlpha == 0 {
		cfg.NodeAlpha = 0.25
	}
	if cfg.NodeAlpha < 0 || cfg.NodeAlpha > 1 {
		return nil, fmt.Errorf("adapt: node alpha %v outside (0,1]", cfg.NodeAlpha)
	}
	if cfg.NodeCeiling == 0 {
		cfg.NodeCeiling = 1 << 20
	}
	if cfg.NodeCeiling < 0 {
		return nil, fmt.Errorf("adapt: negative node ceiling %v", cfg.NodeCeiling)
	}
	if cfg.Hysteresis == 0 {
		cfg.Hysteresis = 0.1
	}
	if cfg.Hysteresis < 0 {
		cfg.Hysteresis = 0
	}
	return &Controller{cfg: cfg, classes: make(map[string]*classState)}, nil
}

// MustNewController is NewController for static tables known to be valid.
func MustNewController(cfg Config) *Controller {
	c, err := NewController(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// DefaultLevels is the stock degradation ladder. squareQAM enables the
// real-valued Schnorr–Euchner rung (it needs a PAM decomposition);
// budgetNodes is the per-frame expansion cap of the budgeted rung (0 picks
// 1<<16). The pressure thresholds come from the adapt bench study: radius
// scaling alone recovers most of the heavy tail, so the exact rungs stretch
// far before any quality is given up.
func DefaultLevels(squareQAM bool, budgetNodes int64) []Level {
	if budgetNodes <= 0 {
		budgetNodes = 1 << 16
	}
	levels := []Level{
		{Name: "exact-full", Policy: core.DecodePolicy{}, MaxPressure: 0.5, MinSNRdB: math.Inf(-1)},
		{Name: "exact-radius", Policy: core.DecodePolicy{RadiusScale: 2}, MaxPressure: 1.5, MinSNRdB: 6},
	}
	if squareQAM {
		levels = append(levels, Level{
			Name:        "se-linf",
			Policy:      core.DecodePolicy{Strategy: sphere.RealSE, Norm: sphere.NormLInf},
			MaxPressure: 3,
			MinSNRdB:    8,
		})
	}
	levels = append(levels,
		Level{
			Name:        "budget-fp16",
			Policy:      core.DecodePolicy{RadiusScale: 1.5, MaxNodes: budgetNodes, FP16GEMM: true},
			MaxPressure: 6,
			MinSNRdB:    math.Inf(-1),
		},
		Level{
			Name:        "fsd",
			Policy:      core.DecodePolicy{Strategy: sphere.FSD, RadiusScale: 1.5},
			MaxPressure: 10,
			MinSNRdB:    math.Inf(-1),
		},
		Level{Name: "linear", Policy: core.DecodePolicy{Linear: true}, MaxPressure: math.Inf(1), MinSNRdB: math.Inf(-1)},
	)
	return levels
}

// SNREstimateDB converts a per-frame noise-variance estimate into the SNR
// the controller gates levels on, inverting channel.NoiseVariance under the
// per-transmit-symbol convention (σ² = 10^(−SNR/10)).
func SNREstimateDB(noiseVar float64) float64 {
	if noiseVar <= 0 {
		return math.Inf(1)
	}
	return -10 * math.Log10(noiseVar)
}

// Observe feeds one decoded frame back into the controller: the class it
// belonged to, its estimated SNR, the tree expansions it cost, and the
// quality it finished at. The scheduler calls this from batch counters; the
// Recorder path feeds the same numbers from a trace.Recorder (the two agree
// by the recorder-tally invariant pinned in the trace tests).
func (c *Controller) Observe(class string, snrDB float64, nodes int64, q decoder.Quality) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.class(class)
	if !st.observed {
		st.ewmaNodes = float64(nodes)
		st.ewmaSNR = snrDB
		st.observed = true
	} else {
		a := c.cfg.NodeAlpha
		st.ewmaNodes += a * (float64(nodes) - st.ewmaNodes)
		st.ewmaSNR += a * (snrDB - st.ewmaSNR)
	}
	st.quality[q.String()]++
}

// Decide picks the policy for the next batch of the given class. queueDepth
// and queueCap describe the scheduler's backlog (cap ≤ 0 means unbounded:
// queue pressure 0); pressure is the max of queue pressure and the class's
// node EWMA over the ceiling. The returned Decision records the chosen level
// and the pressure that chose it.
func (c *Controller) Decide(class string, queueDepth, queueCap int) Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.class(class)

	// Queue pressure is backlog over remaining headroom, not plain
	// occupancy: a half-full queue reads 1.0, three-quarters reads 3.0, and
	// saturation diverges — so a full queue always reaches the ladder's
	// deepest rungs no matter where the node EWMA sits.
	qp := 0.0
	if queueCap > 0 && queueDepth > 0 {
		if queueDepth >= queueCap {
			qp = math.Inf(1)
		} else {
			qp = float64(queueDepth) / float64(queueCap-queueDepth)
		}
	}
	nodes := st.ewmaNodes
	if !st.observed {
		nodes = c.cfg.PriorNodes
	}
	np := nodes / c.cfg.NodeCeiling
	pressure := math.Max(qp, np)
	snr := st.ewmaSNR
	if !st.observed {
		snr = math.Inf(1) // no evidence the channel is bad yet
	}

	idx := c.pick(st.level, pressure, snr)
	st.level = idx
	lvl := c.cfg.Levels[idx]
	st.decisions[lvl.Name]++
	return Decision{Class: class, Level: lvl.Name, Policy: lvl.Policy, Pressure: pressure, SNRdB: snr}
}

// pick resolves the ladder: first level whose MaxPressure admits pressure and
// whose MinSNRdB admits snr. Moving up the ladder (recovery, lower index than
// cur) additionally requires pressure to clear the hysteresis band below that
// level's threshold; moving down (degradation) is immediate.
func (c *Controller) pick(cur int, pressure, snr float64) int {
	for i, l := range c.cfg.Levels {
		if snr < l.MinSNRdB {
			continue
		}
		limit := l.MaxPressure
		if i < cur {
			limit *= 1 - c.cfg.Hysteresis
		}
		if pressure <= limit {
			return i
		}
	}
	return len(c.cfg.Levels) - 1
}

// class returns (creating if needed) the state of one request class. Caller
// holds c.mu.
func (c *Controller) class(name string) *classState {
	st := c.classes[name]
	if st == nil {
		st = &classState{
			decisions: make(map[string]int),
			quality:   make(map[string]int),
		}
		c.classes[name] = st
	}
	return st
}

// ClassSnapshot is the observable state of one request class.
type ClassSnapshot struct {
	Class     string         `json:"class"`
	Level     string         `json:"level"`
	Policy    string         `json:"policy"`
	EWMANodes float64        `json:"ewma_nodes"`
	EWMASNRdB float64        `json:"ewma_snr_db"`
	Decisions map[string]int `json:"decisions"`
	Quality   map[string]int `json:"quality"`
}

// Snapshot reports the controller's per-class state, classes sorted by name,
// for /v1/policy and the metrics endpoint.
func (c *Controller) Snapshot() []ClassSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.classes))
	for name := range c.classes {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]ClassSnapshot, 0, len(names))
	for _, name := range names {
		st := c.classes[name]
		lvl := c.cfg.Levels[st.level]
		cs := ClassSnapshot{
			Class:     name,
			Level:     lvl.Name,
			Policy:    lvl.Policy.String(),
			EWMANodes: st.ewmaNodes,
			Decisions: make(map[string]int, len(st.decisions)),
			Quality:   make(map[string]int, len(st.quality)),
		}
		if st.observed {
			cs.EWMASNRdB = st.ewmaSNR
		}
		for k, v := range st.decisions {
			cs.Decisions[k] = v
		}
		for k, v := range st.quality {
			cs.Quality[k] = v
		}
		out = append(out, cs)
	}
	return out
}

// Levels exposes the configured ladder (a copy) for config echoes.
func (c *Controller) Levels() []Level {
	out := make([]Level, len(c.cfg.Levels))
	copy(out, c.cfg.Levels)
	return out
}

// Recorder adapts the controller into a trace.Recorder for one search of the
// given class at the given estimated SNR: expansions are tallied as the
// search runs and committed as one observation at SearchEnd, degraded
// searches counting as best-effort. This is the trace-fed ingestion path; a
// scheduler that already has batch counters can call Observe directly.
func (c *Controller) Recorder(class string, snrDB float64) trace.Recorder {
	return &obsRecorder{c: c, class: class, snrDB: snrDB}
}

type obsRecorder struct {
	c        *Controller
	class    string
	snrDB    float64
	nodes    int64
	degraded bool
}

func (r *obsRecorder) SearchStart(m, alphabet int, radiusSq float64) {}
func (r *obsRecorder) NodeExpanded(depth int)                        { r.nodes++ }
func (r *obsRecorder) Children(depth, pruned, kept int)              {}
func (r *obsRecorder) RadiusUpdate(radiusSq float64)                 {}
func (r *obsRecorder) Degraded(reason string)                        { r.degraded = true }

func (r *obsRecorder) SearchEnd(finalRadiusSq float64, retries int) {
	q := decoder.QualityExact
	if r.degraded {
		q = decoder.QualityBestEffort
	}
	r.c.Observe(r.class, r.snrDB, r.nodes, q)
	r.nodes, r.degraded = 0, false
}
