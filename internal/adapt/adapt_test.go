package adapt

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/decoder"
	"repro/internal/fpga"
	"repro/internal/mimo"
	"repro/internal/rng"
	"repro/internal/sphere"
)

func testLevels() []Level { return DefaultLevels(true, 4096) }

func TestNewControllerValidation(t *testing.T) {
	if _, err := NewController(Config{}); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := NewController(Config{Levels: []Level{{Policy: core.DecodePolicy{}}}}); err == nil {
		t.Error("unnamed level accepted")
	}
	if _, err := NewController(Config{Levels: []Level{
		{Name: "a", MaxPressure: 1},
		{Name: "a", MaxPressure: 2},
	}}); err == nil {
		t.Error("duplicate level name accepted")
	}
	if _, err := NewController(Config{Levels: []Level{
		{Name: "bad", Policy: core.DecodePolicy{Norm: sphere.NormLInf}, MaxPressure: 1},
	}}); err == nil {
		t.Error("invalid level policy accepted")
	}
	if _, err := NewController(Config{Levels: testLevels(), NodeAlpha: 2}); err == nil {
		t.Error("alpha > 1 accepted")
	}
	if _, err := NewController(Config{Levels: testLevels()}); err != nil {
		t.Errorf("default ladder rejected: %v", err)
	}
}

func TestDefaultLevelsLadderShape(t *testing.T) {
	withSE := DefaultLevels(true, 0)
	withoutSE := DefaultLevels(false, 0)
	if len(withSE) != len(withoutSE)+1 {
		t.Fatalf("square-QAM ladder should add exactly the se-linf rung: %d vs %d", len(withSE), len(withoutSE))
	}
	last := withSE[len(withSE)-1]
	if !last.Policy.Linear || !math.IsInf(last.MaxPressure, 1) {
		t.Fatal("ladder must terminate in an always-eligible linear rung")
	}
	// Thresholds must be non-decreasing so "more pressure" never selects a
	// more expensive level.
	for i := 1; i < len(withSE); i++ {
		if withSE[i].MaxPressure < withSE[i-1].MaxPressure {
			t.Fatalf("ladder thresholds not monotone at %q", withSE[i].Name)
		}
	}
}

func TestDecideWalksLadderUnderPressure(t *testing.T) {
	c := MustNewController(Config{Levels: testLevels(), NodeCeiling: 1000})
	// No observations, empty queue: the exact full search.
	if d := c.Decide("a", 0, 100); d.Level != "exact-full" {
		t.Fatalf("idle decision %q", d.Level)
	}
	// Saturated queue: last resort.
	if d := c.Decide("a", 100, 100); d.Level != "linear" {
		t.Fatalf("saturated decision %q", d.Level)
	}
	// Node cost alone (queue empty) also degrades: EWMA at 1.2× ceiling.
	c.Observe("b", 14, 1200, decoder.QualityExact)
	if d := c.Decide("b", 0, 100); d.Level != "exact-radius" {
		t.Fatalf("hot-class decision %q", d.Level)
	}
}

func TestDecideSNRGatesLevels(t *testing.T) {
	c := MustNewController(Config{Levels: testLevels(), NodeCeiling: 1000})
	// Pressure 2.0 at high SNR lands on the se-linf rung (MaxPressure 3).
	c.Observe("hi", 14, 2000, decoder.QualityExact)
	if d := c.Decide("hi", 0, 0); d.Level != "se-linf" {
		t.Fatalf("high-SNR decision %q", d.Level)
	}
	// The same pressure at 3 dB skips both SNR-gated rungs (exact-radius
	// needs 6 dB, se-linf needs 8) and lands on budget-fp16.
	c.Observe("lo", 3, 2000, decoder.QualityExact)
	if d := c.Decide("lo", 0, 0); d.Level != "budget-fp16" {
		t.Fatalf("low-SNR decision %q", d.Level)
	}
}

func TestRecoveryHysteresis(t *testing.T) {
	c := MustNewController(Config{Levels: testLevels(), NodeCeiling: 1000, Hysteresis: 0.2})
	// Drive the class down the ladder.
	c.Observe("a", 14, 1400, decoder.QualityExact)
	if d := c.Decide("a", 0, 0); d.Level != "exact-radius" {
		t.Fatalf("setup decision %q", d.Level)
	}
	// Pressure falls to just under exact-full's threshold (0.5) but inside
	// the hysteresis band (> 0.8·0.5 = 0.4): stay put.
	reObserve(c, "a", 14, 450)
	if d := c.Decide("a", 0, 0); d.Level != "exact-radius" {
		t.Fatalf("recovery inside hysteresis band jumped to %q", d.Level)
	}
	// Pressure well below the band: recover.
	reObserve(c, "a", 14, 100)
	if d := c.Decide("a", 0, 0); d.Level != "exact-full" {
		t.Fatalf("clear recovery stayed at %q", d.Level)
	}
}

// reObserve feeds the same observation until the EWMA converges to it, so a
// test can set the smoothed state directly.
func reObserve(c *Controller, class string, snrDB float64, nodes int64) {
	for i := 0; i < 60; i++ {
		c.Observe(class, snrDB, nodes, decoder.QualityExact)
	}
}

func TestFirstObservationSeedsEWMA(t *testing.T) {
	c := MustNewController(Config{Levels: testLevels(), NodeCeiling: 1000})
	c.Observe("a", 9, 700, decoder.QualityExact)
	snaps := c.Snapshot()
	if len(snaps) != 1 || snaps[0].EWMANodes != 700 || snaps[0].EWMASNRdB != 9 {
		t.Fatalf("first observation not seeded directly: %+v", snaps)
	}
}

func TestSNREstimateDB(t *testing.T) {
	for _, snr := range []float64{-3, 0, 8, 14, 30} {
		noiseVar := math.Pow(10, -snr/10)
		if got := SNREstimateDB(noiseVar); math.Abs(got-snr) > 1e-9 {
			t.Fatalf("SNREstimateDB(%v) = %v, want %v", noiseVar, got, snr)
		}
	}
	if !math.IsInf(SNREstimateDB(0), 1) {
		t.Fatal("zero noise variance must estimate +Inf")
	}
}

func TestRecorderFeedsObservations(t *testing.T) {
	// A real traced search through the controller's Recorder must move the
	// class EWMA by exactly the nodes the search expanded.
	c := MustNewController(Config{Levels: testLevels(), NodeCeiling: 1e9})
	cons := constellation.New(constellation.QAM4)
	rec := c.Recorder("traced", 12)
	sd := sphere.MustNew(sphere.Config{Const: cons, Strategy: sphere.SortedDFS, Recorder: rec})
	r := rng.New(7)
	f, err := mimo.GenerateFrame(r, mimo.Config{Tx: 4, Rx: 4, Mod: constellation.QAM4}, 12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sd.Decode(f.H, f.Y, f.NoiseVar)
	if err != nil {
		t.Fatal(err)
	}
	snaps := c.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("%d classes", len(snaps))
	}
	if got := int64(snaps[0].EWMANodes); got != res.Counters.NodesExpanded {
		t.Fatalf("recorder fed %d nodes, counters say %d", got, res.Counters.NodesExpanded)
	}
	if snaps[0].Quality["exact"] != 1 {
		t.Fatalf("quality histogram %+v", snaps[0].Quality)
	}
}

// scriptStep is one frame of a synthetic load trace.
type scriptStep struct {
	class string
	snrDB float64
	nodes int64
	depth int
	cap   int
}

// runScript replays a deterministic observation/decision script and returns
// the decision sequence plus the final quality histograms.
func runScript(c *Controller, steps []scriptStep) ([]Decision, []ClassSnapshot) {
	var out []Decision
	for _, s := range steps {
		d := c.Decide(s.class, s.depth, s.cap)
		q := decoder.QualityExact
		if d.Policy.Linear {
			q = decoder.QualityFallback
		}
		c.Observe(s.class, s.snrDB, s.nodes, q)
		out = append(out, d)
	}
	return out, c.Snapshot()
}

// syntheticTrace builds a reproducible mixed-pressure script from a seed,
// standing in for (scenario, seed) in the determinism contract.
func syntheticTrace(seed uint64, n int) []scriptStep {
	r := rng.New(seed)
	classes := []string{"embb", "urllc", "mmtc"}
	steps := make([]scriptStep, n)
	for i := range steps {
		steps[i] = scriptStep{
			class: classes[int(r.Uint64()%uint64(len(classes)))],
			snrDB: 4 + 12*r.Float64(),
			nodes: int64(r.Uint64() % 3000),
			depth: int(r.Uint64() % 64),
			cap:   64,
		}
	}
	return steps
}

func TestDeterministicDecisionSequence(t *testing.T) {
	// Same (trace, seed, level table) ⇒ identical decision sequence and
	// quality histograms, run to run.
	steps := syntheticTrace(42, 500)
	mk := func() *Controller {
		return MustNewController(Config{Levels: testLevels(), NodeCeiling: 1000})
	}
	d1, s1 := runScript(mk(), steps)
	d2, s2 := runScript(mk(), steps)
	if !reflect.DeepEqual(d1, d2) {
		t.Fatal("decision sequences differ across identical replays")
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("snapshots differ across identical replays")
	}
	// A different seed must actually change something, or the test is
	// vacuous.
	d3, _ := runScript(mk(), syntheticTrace(43, 500))
	if reflect.DeepEqual(d1, d3) {
		t.Fatal("different traces produced identical decision sequences")
	}
}

func TestConcurrentObserveDecide(t *testing.T) {
	// Hammer the controller from many goroutines (run under -race via the
	// Makefile race target). No sequence assertion — just absence of data
	// races and a coherent final snapshot.
	c := MustNewController(Config{Levels: testLevels(), NodeCeiling: 1000})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			class := []string{"a", "b"}[g%2]
			for i := 0; i < 200; i++ {
				c.Decide(class, i%64, 64)
				c.Observe(class, 10, int64(i), decoder.QualityExact)
			}
		}(g)
	}
	wg.Wait()
	snaps := c.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("%d classes", len(snaps))
	}
	for _, s := range snaps {
		total := 0
		for _, n := range s.Decisions {
			total += n
		}
		if total != 800 {
			t.Fatalf("class %s: %d decisions recorded, want 800", s.Class, total)
		}
		if s.Quality["exact"] != 800 {
			t.Fatalf("class %s: quality %+v", s.Class, s.Quality)
		}
	}
}

func TestLadderPoliciesBuildOnAccelerator(t *testing.T) {
	// Every rung of the stock ladder must be servable by a square-QAM
	// accelerator — a ladder entry that cannot build would strand the
	// controller at decide time.
	acc := core.MustNew(fpga.Optimized, constellation.QAM4, 6, 6, core.Options{})
	for _, l := range DefaultLevels(true, 4096) {
		if err := acc.CheckPolicy(l.Policy); err != nil {
			t.Errorf("level %q unservable: %v", l.Name, err)
		}
	}
}
