package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adapt"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/decoder"
	"repro/internal/integrity"
	"repro/internal/resilience"
	"repro/internal/trace"
)

// Typed admission errors. Test with errors.Is.
var (
	// ErrOverloaded is returned under the Reject policy when the admission
	// queue is full.
	ErrOverloaded = errors.New("serve: overloaded, request rejected")
	// ErrClosed is returned for submissions after Close has begun.
	ErrClosed = errors.New("serve: scheduler closed")
)

// Backend is the decode engine a Scheduler drives. core.Accelerator
// implements it. Backends are not required to be safe for concurrent use:
// the scheduler builds one per worker from the factory and serializes the
// shed path behind a mutex.
type Backend interface {
	Name() string
	Constellation() *constellation.Constellation
	ValidateInput(in core.BatchInput) error
	DecodeBatch(inputs []core.BatchInput, opts ...core.BatchOption) (*core.BatchReport, error)
	DecodeFallback(in core.BatchInput) (*decoder.Result, error)
}

// Config tunes a Scheduler. The zero value is usable: defaults fill in.
type Config struct {
	// MaxBatch is the coalescing ceiling: a batch dispatches as soon as it
	// holds this many frames. Default 16.
	MaxBatch int
	// MaxWait is the coalescing deadline: a batch dispatches when its
	// oldest frame has waited this long, full or not. Default 1ms.
	MaxWait time.Duration
	// Workers is the number of decode workers; each gets its own Backend
	// instance from the factory. Default 1.
	Workers int
	// QueueCap bounds the admission queue (frames accepted but not yet
	// claimed by the batcher). Default 256.
	QueueCap int
	// Policy selects what Submit does when the queue is full.
	Policy OverloadPolicy
	// Budget bounds each dispatched batch (modeled-time deadline and/or
	// shared node budget — core.WithBudget semantics). Overruns degrade
	// quality, they never drop frames.
	Budget core.BatchBudget
	// DecodePolicy, when non-nil, is the fixed core.DecodePolicy every
	// dispatched batch decodes under (core.WithPolicy semantics). Runtime
	// overrides via SetPolicy / PUT /v1/policy shadow it; nil decodes with
	// the backend's base configuration.
	DecodePolicy *core.DecodePolicy
	// Controller, when non-nil, turns on adaptive complexity control: the
	// scheduler consults it at batch-formation time for the policy of each
	// batch's request class and feeds decode outcomes back into it. A
	// SetPolicy override suspends it; SetPolicy("adaptive") resumes it.
	Controller *adapt.Controller
	// Resilience tunes worker supervision, the per-backend circuit breaker,
	// retries, and hedging. The zero value enables supervision with
	// defaults; set Resilience.Disable for the unsupervised seed behaviour.
	Resilience ResilienceConfig
	// WrapWorker, when non-nil, wraps each decode worker's backend (and is
	// re-applied on supervised restarts). The chaos harness injects its
	// FaultyBackend here; validation and the shed path stay unwrapped.
	WrapWorker func(worker int, be Backend) Backend
}

// withDefaults returns c with zero fields replaced by defaults.
func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.MaxWait <= 0 {
		c.MaxWait = time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	return c
}

// Response is what a successful Submit returns: the detection plus the
// scheduling telemetry the request experienced.
type Response struct {
	// Result is the detection (Quality flags budget cuts and sheds).
	Result *decoder.Result
	// BatchSize is the number of frames coalesced into the dispatch that
	// served this request (1 when the request was shed inline).
	BatchSize int
	// QueueWait is submit → dispatch; Service is the batch decode wall
	// time; SimulatedTime the modeled FPGA time of the batch.
	QueueWait     time.Duration
	Service       time.Duration
	SimulatedTime time.Duration
	// Shed reports the request was served by the inline fallback path
	// instead of a dispatched batch.
	Shed bool
}

// result pairs a Response with a dispatch error for the reply channel.
type result struct {
	out *Response
	err error
}

// request is one queued frame. claimed settles the race between the worker
// delivering the response and the submitter abandoning the wait on context
// expiry: exactly one side wins the CAS, so an abandoned frame is counted
// once and its (unobservable) response is never published to trace streams.
type request struct {
	in  core.BatchInput
	enq time.Time
	// scenario is the workload label the submitter attached ("" for
	// unlabeled traffic); it keys the per-scenario quality and QR-cache
	// splits in Stats.
	scenario string
	resp     chan result // buffered 1: workers never block on reply
	claimed  atomic.Bool
}

// batch is one coalesced dispatch: the claimed requests plus the instant
// coalescing began (the batch-form span start when tracing).
type batch struct {
	reqs []*request
	born time.Time
}

// Scheduler coalesces single-frame decode requests into batches and runs
// them on a worker pool of accelerator backends. Safe for concurrent use.
type Scheduler struct {
	cfg Config

	queue    chan *request
	dispatch chan batch
	stop     chan struct{}

	// admit guards the closed flag against the enqueue: Submit holds it
	// shared around (check closed, enqueue), Close holds it exclusively to
	// flip closed — so no frame can enter the queue after Close begins and
	// the batcher's final drain is complete.
	admit  sync.RWMutex
	closed bool

	validator Backend    // used only for read-only validation
	shedMu    sync.Mutex // serializes the inline shed backend
	shedBE    Backend

	// basePol is the backend's default decode policy (zero when the backend
	// does not expose one); auditModeFor consults it so default-policy
	// batches get the re-encode audit matching their norm and precision.
	basePol core.DecodePolicy

	// Resilience layer: one supervised control block per worker, plus the
	// shared retry/hedge budgets and backoff (see resilient.go).
	factory     func() (Backend, error)
	rcfg        ResilienceConfig
	workers     []*workerCtl
	retryBudget *resilience.Budget
	hedgeBudget *resilience.Budget
	backoff     *resilience.Backoff

	batcherDone chan struct{}
	workersWG   sync.WaitGroup

	m      *metrics
	traces *trace.Hub

	// Decode-policy state: a runtime override (PUT /v1/policy) shadows both
	// the adaptive controller and the configured fixed policy; polAdaptive
	// tracks whether the controller is consulted (suspended while overridden,
	// resumed by SetPolicy("adaptive")). See adaptive.go.
	polMu       sync.RWMutex
	polOverride *core.DecodePolicy
	polAdaptive bool

	// epoch and instance identify this scheduler incarnation: epoch is
	// monotonic across restarts on one host (creation time in unix nanos),
	// instance is a unique id. A cluster front end compares both across
	// health probes to detect shard restarts and invalidate any affinity
	// assumptions (the restarted shard's QR cache is cold).
	epoch    int64
	instance string
}

// instanceSeq disambiguates schedulers created within the same nanosecond
// (test suites build many per process).
var instanceSeq atomic.Uint64

// newInstanceID derives a short unique id from the epoch, the process, and a
// per-process sequence number.
func newInstanceID(epoch int64) string {
	h := uint64(14695981039346656037) // FNV-1a
	for _, v := range []uint64{uint64(epoch), uint64(os.Getpid()), instanceSeq.Add(1)} {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * 1099511628211
			v >>= 8
		}
	}
	return fmt.Sprintf("%016x", h)
}

// New builds and starts a scheduler. factory must return a fresh Backend
// per call; the scheduler creates Workers+2 of them (one per worker, one
// for admission validation, one for the inline shed path).
func New(cfg Config, factory func() (Backend, error)) (*Scheduler, error) {
	if factory == nil {
		return nil, errors.New("serve: nil backend factory")
	}
	cfg = cfg.withDefaults()
	if cfg.Budget.Deadline < 0 || cfg.Budget.NodeBudget < 0 {
		return nil, fmt.Errorf("serve: negative batch budget %+v", cfg.Budget)
	}
	switch cfg.Policy {
	case Reject, ShedToLinear, Block:
	default:
		return nil, fmt.Errorf("serve: unknown overload policy %v", int(cfg.Policy))
	}
	rcfg := cfg.Resilience.withDefaults()
	if rcfg.HedgeAfter < 0 || rcfg.WedgeTimeout < 0 {
		return nil, fmt.Errorf("serve: negative resilience timer (hedge %v, wedge %v)",
			rcfg.HedgeAfter, rcfg.WedgeTimeout)
	}
	s := &Scheduler{
		cfg:         cfg,
		queue:       make(chan *request, cfg.QueueCap),
		dispatch:    make(chan batch, cfg.Workers),
		stop:        make(chan struct{}),
		batcherDone: make(chan struct{}),
		factory:     factory,
		rcfg:        rcfg,
		retryBudget: resilience.NewBudget(rcfg.RetryBudget, 10),
		hedgeBudget: resilience.NewBudget(rcfg.HedgeBudget, 4),
		backoff:     resilience.NewBackoff(rcfg.RetryBase, rcfg.RetryCap, rcfg.Seed),
		m:           newMetrics(cfg.MaxBatch),
		traces:      trace.NewHub(),
		epoch:       time.Now().UnixNano(),
	}
	s.instance = newInstanceID(s.epoch)
	s.polAdaptive = cfg.Controller != nil
	var err error
	if s.validator, err = factory(); err != nil {
		return nil, fmt.Errorf("serve: backend factory: %w", err)
	}
	if bp, ok := s.validator.(basePolicyer); ok {
		s.basePol = bp.BasePolicy()
	}
	if cfg.DecodePolicy != nil {
		if err := s.checkPolicy(*cfg.DecodePolicy); err != nil {
			return nil, fmt.Errorf("serve: decode policy: %w", err)
		}
	}
	if s.shedBE, err = factory(); err != nil {
		return nil, fmt.Errorf("serve: backend factory: %w", err)
	}
	s.workers = make([]*workerCtl, cfg.Workers)
	for i := range s.workers {
		be, err := factory()
		if err != nil {
			return nil, fmt.Errorf("serve: backend factory: %w", err)
		}
		if cfg.WrapWorker != nil {
			be = cfg.WrapWorker(i, be)
		}
		s.workers[i] = &workerCtl{
			id: i,
			be: be,
			breaker: resilience.NewBreaker(resilience.BreakerConfig{
				FailureThreshold: rcfg.FailureThreshold,
				CooldownBase:     rcfg.CooldownBase,
				CooldownCap:      rcfg.CooldownCap,
				Seed:             rcfg.Seed + uint64(i) + 1,
			}),
			restarts:  resilience.NewRestartBudget(rcfg.MaxRestarts, rcfg.RestartWindow),
			sdcBudget: resilience.NewRestartBudget(rcfg.SDCQuarantineLimit, rcfg.SDCWindow),
		}
	}
	go s.batcher()
	s.workersWG.Add(cfg.Workers)
	for _, w := range s.workers {
		go s.worker(w)
	}
	return s, nil
}

// Config returns the scheduler's effective (default-filled) configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Identity returns the scheduler's incarnation marker: a monotonic epoch
// (creation time, unix nanos — a restart always yields a larger one) and a
// unique instance id. Both ride on /healthz and /v1/config so a cluster
// front end can detect restarts.
func (s *Scheduler) Identity() (epoch int64, instance string) { return s.epoch, s.instance }

// Backend returns the validation backend (for its name/constellation).
func (s *Scheduler) Backend() Backend { return s.validator }

// Traces returns the scheduler's trace hub. Subscribing a consumer turns on
// batch tracing for every subsequently dispatched batch; with no subscribers
// the decode path never touches the trace machinery.
func (s *Scheduler) Traces() *trace.Hub { return s.traces }

// Stats returns a snapshot of the scheduler's counters and gauges.
func (s *Scheduler) Stats() Stats {
	s.admit.RLock()
	draining := s.closed
	s.admit.RUnlock()
	st := s.m.snapshot(len(s.queue), draining)
	state, _ := s.Health()
	st.Health = state.String()
	for _, w := range s.workers {
		c := w.breaker.Counters()
		st.BreakerOpened += c.Opened
		st.BreakerProbes += c.Probes
		st.BreakerReclosed += c.Reclosed
		st.BreakerShortCircuit += c.ShortCircuited
		if cs, ok := w.backend().(cacheStatser); ok {
			hits, misses := cs.PreprocessCacheStats()
			st.QRCacheHits += uint64(hits)
			st.QRCacheMisses += uint64(misses)
		}
		if ss, ok := w.backend().(sdcStatser); ok {
			st.QRCacheSDCEvictions += uint64(ss.PreprocessCacheSDCEvictions())
		}
	}
	// A verify-on-hit eviction is a detection with built-in recovery: the
	// poisoned factorization is dropped and recomputed in the same decode.
	if ev := st.QRCacheSDCEvictions; ev > 0 {
		st.SDCDetected[integrity.SiteQRCache] += ev
		st.SDCRecovered += ev
	}
	return st
}

// cacheStatser is the optional Backend facet reporting QR preprocessing
// cache effectiveness (core.Accelerator implements it). The cluster smoke
// reads the aggregate off /metrics to prove affinity routing keeps each
// shard's cache hot.
type cacheStatser interface {
	PreprocessCacheStats() (hits, misses int64)
}

// sdcStatser is the optional Backend facet reporting verify-on-hit QR cache
// evictions (core.Accelerator implements it) — the qr-cache site of the SDC
// observability surface.
type sdcStatser interface {
	PreprocessCacheSDCEvictions() int64
}

// Healthy reports whether the scheduler is accepting work.
func (s *Scheduler) Healthy() bool {
	s.admit.RLock()
	defer s.admit.RUnlock()
	return !s.closed
}

// Submit enqueues one frame and blocks until it is decoded, shed, rejected,
// or ctx expires. A ctx expiry after admission abandons the wait but not the
// work: the frame still decodes with its batch and is counted in Stats.
func (s *Scheduler) Submit(ctx context.Context, in core.BatchInput) (*Response, error) {
	return s.SubmitScenario(ctx, in, "")
}

// SubmitScenario is Submit with a workload label attached: completed frames
// accumulate into Stats.Scenarios[scenario] (quality mix plus the QR-cache
// hits/misses their batches generated). An empty scenario is plain Submit.
func (s *Scheduler) SubmitScenario(ctx context.Context, in core.BatchInput, scenario string) (*Response, error) {
	if err := s.validator.ValidateInput(in); err != nil {
		s.m.mu.Lock()
		s.m.invalid++
		s.m.mu.Unlock()
		return nil, err
	}
	req := &request{in: in, enq: time.Now(), scenario: scenario, resp: make(chan result, 1)}

	s.admit.RLock()
	if s.closed {
		s.admit.RUnlock()
		return nil, ErrClosed
	}
	admitted, err := s.enqueue(ctx, req)
	s.admit.RUnlock()
	if err != nil {
		return nil, err
	}
	if !admitted {
		// Queue full under ShedToLinear: serve inline at linear cost.
		return s.shedInline(req)
	}

	s.m.mu.Lock()
	s.m.submitted++
	s.m.mu.Unlock()

	select {
	case r := <-req.resp:
		return r.out, r.err
	case <-ctx.Done():
		if !req.claimed.CompareAndSwap(false, true) {
			// Lost the race: the worker already committed a response, so
			// deliver it (the buffered send has either happened or is
			// imminent) rather than reporting a timeout for decoded work.
			r := <-req.resp
			return r.out, r.err
		}
		return nil, ctx.Err()
	}
}

// enqueue applies the overload policy. It reports whether the request made
// it into the queue; (false, nil) means "shed it inline". Callers hold
// s.admit shared.
func (s *Scheduler) enqueue(ctx context.Context, req *request) (bool, error) {
	switch s.cfg.Policy {
	case Block:
		select {
		case s.queue <- req:
			return true, nil
		default:
		}
		// Queue full: park until space, cancellation, or shutdown.
		select {
		case s.queue <- req:
			return true, nil
		case <-ctx.Done():
			return false, ctx.Err()
		case <-s.stop:
			return false, ErrClosed
		}
	case ShedToLinear:
		select {
		case s.queue <- req:
			return true, nil
		default:
			return false, nil
		}
	default: // Reject
		select {
		case s.queue <- req:
			return true, nil
		default:
			s.m.mu.Lock()
			s.m.rejected++
			s.m.mu.Unlock()
			return false, ErrOverloaded
		}
	}
}

// shedInline serves a request on the caller's goroutine with the linear
// fallback decoder — the queue was full and the policy trades quality for
// immediate service.
func (s *Scheduler) shedInline(req *request) (*Response, error) {
	start := time.Now()
	s.shedMu.Lock()
	res, err := s.shedBE.DecodeFallback(req.in)
	s.shedMu.Unlock()
	if err != nil {
		s.m.mu.Lock()
		s.m.failed++
		s.m.mu.Unlock()
		return nil, fmt.Errorf("serve: shed decode: %w", err)
	}
	res.DegradedBy = decoder.DegradedByOverload
	svc := time.Since(start)
	s.m.mu.Lock()
	s.m.shed++
	s.m.quality[res.Quality.String()]++
	s.m.degraded++
	s.m.service.observe(svc)
	s.m.queueWait.observe(start.Sub(req.enq))
	if req.scenario != "" {
		sc := s.m.scenarioAgg(req.scenario)
		sc.frames++
		sc.quality[res.Quality.String()]++
		sc.degraded++
	}
	s.m.mu.Unlock()
	return &Response{
		Result:    res,
		BatchSize: 1,
		QueueWait: start.Sub(req.enq),
		Service:   svc,
		Shed:      true,
	}, nil
}

// batcher is the coalescing loop: it claims the oldest queued frame, gives
// it up to MaxWait to attract company (capped at MaxBatch frames), and
// hands the batch to the worker pool. On shutdown it drains whatever the
// queue still holds into final batches before closing the dispatch channel.
func (s *Scheduler) batcher() {
	defer close(s.batcherDone)
	defer close(s.dispatch)
	for {
		select {
		case first := <-s.queue:
			s.dispatch <- s.fill(first)
		case <-s.stop:
			s.drain()
			return
		}
	}
}

// fill grows a batch around its first frame until MaxBatch, MaxWait, or
// shutdown (shutdown flushes immediately; the main loop's drain handles the
// rest of the queue).
func (s *Scheduler) fill(first *request) batch {
	b := batch{reqs: make([]*request, 1, s.cfg.MaxBatch), born: time.Now()}
	b.reqs[0] = first
	if s.cfg.MaxBatch == 1 {
		return b
	}
	timer := time.NewTimer(s.cfg.MaxWait)
	defer timer.Stop()
	for len(b.reqs) < s.cfg.MaxBatch {
		select {
		case req := <-s.queue:
			b.reqs = append(b.reqs, req)
		case <-timer.C:
			return b
		case <-s.stop:
			return b
		}
	}
	return b
}

// drain empties the queue into maximal batches after stop. No frame
// admitted before Close is lost: the admit lock guarantees nothing enters
// the queue once drain has run.
func (s *Scheduler) drain() {
	b := batch{born: time.Now()}
	flush := func() {
		if len(b.reqs) > 0 {
			s.dispatch <- b
			b = batch{born: time.Now()}
		}
	}
	for {
		select {
		case req := <-s.queue:
			b.reqs = append(b.reqs, req)
			if len(b.reqs) == s.cfg.MaxBatch {
				flush()
			}
		default:
			flush()
			return
		}
	}
}

// worker decodes dispatched batches on its private, supervised backend. The
// loop itself runs under a recovery barrier too, so even a panic escaping
// the per-batch supervision (bookkeeping bugs, not backend faults) restarts
// the loop instead of killing the process.
func (s *Scheduler) worker(w *workerCtl) {
	defer s.workersWG.Done()
	for b := range s.dispatch {
		b := b
		if err := resilience.Recover(func() error { s.runBatch(w, b); return nil }); err != nil {
			// The batch's frames may be unanswered; a typed error is the
			// honest answer of last resort.
			var pe *resilience.PanicError
			if errors.As(err, &pe) {
				s.recordPanic(w.id, pe)
			}
			for _, req := range b.reqs {
				if req.claimed.CompareAndSwap(false, true) {
					req.resp <- result{err: fmt.Errorf("serve: batch decode: %w", err)}
				}
			}
		}
	}
}

// runBatch decodes one coalesced batch through the resilient path and fans
// results back out. When the trace hub has subscribers it records the
// batch's span breakdown (queue-wait → batch-form → preprocess → search →
// respond) and publishes one wire Frame per request; with no subscribers the
// only cost is one atomic load.
func (s *Scheduler) runBatch(w *workerCtl, b batch) {
	reqs := b.reqs
	start := time.Now()
	s.m.mu.Lock()
	s.m.inFlight += len(reqs)
	s.m.mu.Unlock()

	inputs := make([]core.BatchInput, len(reqs))
	for i, req := range reqs {
		inputs[i] = req.in
	}
	// Batch scenario label: the label shared by every frame, "mixed" when a
	// labeled batch coalesced frames from different scenarios, "" when the
	// whole batch is unlabeled. The QR-cache delta below is attributed to it.
	label := reqs[0].scenario
	for _, req := range reqs[1:] {
		if req.scenario != label {
			label = scenarioMixed
			break
		}
	}
	// Snapshot the worker's QR-cache counters around the decode so the hits
	// this batch generates can be split per scenario. The worker owns its
	// backend, so the delta is exact unless supervision swaps the backend
	// mid-decode (then the delta is clamped to zero).
	var cacheH0, cacheM0 int64
	cs, hasCache := w.backend().(cacheStatser)
	if hasCache {
		cacheH0, cacheM0 = cs.PreprocessCacheStats()
	}
	// Consult the decode-policy state at batch-formation time: the adaptive
	// controller (keyed by the batch's request class), a runtime override, or
	// the configured fixed policy. polSource labels the decision in metrics.
	pol, polSource := s.policyFor(classOf(label))
	var bt *trace.BatchTrace
	opts := []core.BatchOption{core.WithBudget(s.cfg.Budget)}
	if pol != nil {
		opts = append(opts, core.WithPolicy(*pol))
	}
	if s.traces.Active() {
		bt = trace.NewBatchTrace()
		oldest := reqs[0].enq
		for _, req := range reqs[1:] {
			if req.enq.Before(oldest) {
				oldest = req.enq
			}
		}
		bt.AddPhase("queue-wait", oldest, b.born)
		bt.AddPhase("batch-form", b.born, start)
		opts = append(opts, core.WithTrace(bt))
	}
	rep, oc, err := s.decodeResilient(w, inputs, opts, s.auditModeFor(pol))
	svc := time.Since(start)
	if bt != nil && err == nil && oc.fallbackReason != "" {
		// The batch never reached the accelerator (or its attempt was
		// abandoned): synthesize the degraded per-frame traces the traced
		// decode would have produced.
		s.synthesizeFallbackTraces(bt, inputs, oc.fallbackReason)
	}

	s.m.mu.Lock()
	s.m.inFlight -= len(reqs)
	s.m.policyDecisions[polSource]++
	s.m.retries += uint64(oc.retries)
	s.m.wedges += uint64(oc.wedges)
	if oc.sdcAudits > 0 {
		// Every audit-rejected attempt was retried or shed, never served, so
		// each detection is also a recovery.
		s.m.sdcDetected[integrity.SiteMetricAudit] += uint64(oc.sdcAudits)
		s.m.sdcRecovered += uint64(oc.sdcAudits)
	}
	if oc.hedged {
		s.m.hedges++
	}
	if oc.fallbackReason != "" {
		s.m.fallbackByReason[oc.fallbackReason] += uint64(len(reqs))
	}
	if err != nil {
		s.m.failed += uint64(len(reqs))
	} else {
		s.m.completed += uint64(len(reqs))
		s.m.batches++
		s.m.batchedFrames += uint64(len(reqs))
		s.m.batchSizes[len(reqs)-1]++
		s.m.simTime += rep.SimulatedTime
		s.m.energyJ += rep.EnergyJ
		s.m.service.observe(svc)
		if n := rep.Counters.SDCDetected; n > 0 {
			// ABFT caught (and repaired in place) bit flips inside the search.
			s.m.sdcDetected[integrity.SiteGEMM] += uint64(n)
			s.m.sdcRecovered += uint64(rep.Counters.SDCRecovered)
		}
		for i, res := range rep.Results {
			s.m.quality[res.Quality.String()]++
			if res.Quality.Degraded() {
				s.m.degraded++
			}
			if sc := reqs[i].scenario; sc != "" {
				agg := s.m.scenarioAgg(sc)
				agg.frames++
				agg.quality[res.Quality.String()]++
				if res.Quality.Degraded() {
					agg.degraded++
				}
			}
		}
		for _, req := range reqs {
			s.m.queueWait.observe(start.Sub(req.enq))
		}
		if hasCache && label != "" {
			h1, m1 := cs.PreprocessCacheStats()
			if dh := h1 - cacheH0; dh > 0 {
				s.m.scenarioAgg(label).cacheHits += uint64(dh)
			}
			if dm := m1 - cacheM0; dm > 0 {
				s.m.scenarioAgg(label).cacheMisses += uint64(dm)
			}
		}
	}
	s.m.mu.Unlock()

	// GEMM repairs are this worker's hardware lying, caught in the act:
	// charge its SDC quarantine allowance (outside the metrics lock —
	// noteWorkerSDC takes it on quarantine).
	if err == nil && rep.Counters.SDCDetected > 0 {
		s.noteWorkerSDC(w, int(rep.Counters.SDCDetected))
	}

	// Close the control loop: feed each frame's SNR estimate, search cost,
	// and quality back into the controller. Observations flow even while an
	// override suspends the controller's decisions, so it resumes with warm
	// EWMAs instead of stale ones.
	if ctrl := s.cfg.Controller; ctrl != nil && err == nil {
		for i, res := range rep.Results {
			ctrl.Observe(classOf(reqs[i].scenario),
				adapt.SNREstimateDB(inputs[i].NoiseVar), res.Counters.NodesExpanded, res.Quality)
		}
	}

	respondStart := time.Now()
	abandoned := make([]bool, len(reqs))
	var abandonedCount uint64
	for i, req := range reqs {
		if !req.claimed.CompareAndSwap(false, true) {
			// The submitter's context expired and it left: the decode
			// happened (it was coalesced with live frames) but nobody can
			// observe the response.
			abandoned[i] = true
			abandonedCount++
			continue
		}
		if err != nil {
			req.resp <- result{err: fmt.Errorf("serve: batch decode: %w", err)}
			continue
		}
		req.resp <- result{out: &Response{
			Result:        rep.Results[i],
			BatchSize:     len(reqs),
			QueueWait:     start.Sub(req.enq),
			Service:       svc,
			SimulatedTime: rep.SimulatedTime,
		}}
	}
	if abandonedCount > 0 {
		s.m.mu.Lock()
		s.m.abandoned += abandonedCount
		s.m.mu.Unlock()
	}
	if bt != nil && err == nil {
		end := time.Now()
		bt.AddPhase("respond", respondStart, end)
		bt.Batch.End = end
		s.publishFrames(bt, rep, abandoned, oc.annotations())
	}
}

// synthesizeFallbackTraces fills bt.Frames with the zero-visit degraded
// traces a shed batch carries (the accelerator never ran, so there is no
// recorded search to publish).
func (s *Scheduler) synthesizeFallbackTraces(bt *trace.BatchTrace, inputs []core.BatchInput, reason string) {
	alphabet := s.validator.Constellation().Size()
	bt.Frames = make([]*trace.SearchTrace, len(inputs))
	for i, in := range inputs {
		ft := trace.NewSearchTrace()
		ft.SearchStart(in.H.Cols, alphabet, 0)
		ft.Degraded(reason)
		ft.SearchEnd(0, 0)
		bt.Frames[i] = ft
	}
}

// publishFrames converts one traced batch into wire frames and fans them out
// to the hub's subscribers. Abandoned frames are skipped — their respond
// phase never happened, so publishing them would break the span invariants
// consumers check.
func (s *Scheduler) publishFrames(bt *trace.BatchTrace, rep *core.BatchReport, abandoned []bool, annotations []string) {
	n := len(rep.Results)
	for i := 0; i < n; i++ {
		if i >= len(bt.Frames) || bt.Frames[i] == nil || (i < len(abandoned) && abandoned[i]) {
			continue
		}
		f := trace.NewFrame(bt.Frames[i], "serve")
		f.FrameID = s.traces.NextFrameID()
		res := rep.Results[i]
		f.Quality = res.Quality.String()
		f.DegradedBy = res.DegradedBy
		f.Annotations = annotations
		f.AttachBatch(bt, n)
		s.traces.Publish(f)
	}
}

// Close stops admission, drains every already-admitted frame through the
// decoders, and waits for the workers to finish. Safe to call more than
// once; later Submits return ErrClosed.
func (s *Scheduler) Close() {
	s.admit.Lock()
	if s.closed {
		s.admit.Unlock()
		<-s.batcherDone
		s.workersWG.Wait()
		return
	}
	s.closed = true
	s.admit.Unlock()
	close(s.stop)
	<-s.batcherDone
	s.workersWG.Wait()
}
