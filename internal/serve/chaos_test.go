package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/decoder"
	"repro/internal/faultinject"
	"repro/internal/mimo"
	"repro/internal/rng"
)

// chaosWrap returns a WrapWorker hook installing a FaultyBackend driven by
// the given plan on every worker.
func chaosWrap(plan *faultinject.ServePlan) func(int, Backend) Backend {
	return func(_ int, be Backend) Backend { return NewFaultyBackend(be, plan) }
}

// waitStats polls the scheduler until pred holds or the deadline passes.
func waitStats(t *testing.T, s *Scheduler, what string, pred func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if pred(s.Stats()) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("waiting for %s: last stats %+v", what, s.Stats())
}

// TestPanicRecovery: a backend that panics on its first decodes must not
// crash the scheduler; the frames are answered (retried onto a rebuilt
// backend or shed), the panic is counted, and the stack is captured.
func TestPanicRecovery(t *testing.T) {
	plan := faultinject.NewServePlan(faultinject.ServePlanConfig{
		PanicRate: 1, ClearAfter: 2,
	})
	s := newScheduler(t, Config{
		MaxBatch: 1, Workers: 1,
		WrapWorker: chaosWrap(plan),
		Resilience: ResilienceConfig{RetryBudget: 1, RestartWindow: time.Minute},
	})
	for i, in := range genInputs(t, 4, 11) {
		resp, err := s.Submit(context.Background(), in)
		if err != nil {
			t.Fatalf("Submit %d under panics: %v", i, err)
		}
		if resp.Result.Quality == decoder.QualityExact && plan.Calls() <= 2 {
			t.Fatalf("Submit %d: exact quality while the backend was panicking", i)
		}
	}
	st := s.Stats()
	if st.Panics == 0 {
		t.Fatalf("no panics recorded: %+v", st)
	}
	if st.Restarts == 0 {
		t.Fatalf("no restarts recorded: %+v", st)
	}
	if st.LastPanic == "" {
		t.Fatal("LastPanic empty after recovered panics")
	}
}

// TestBreakerOpensRoutesAndRecovers walks the full breaker lifecycle through
// the serving path: transient faults trip it, routed frames degrade to the
// fallback with DegradedByBreaker, and after the fault clears and the
// cooldown passes a probe re-closes it.
func TestBreakerOpensRoutesAndRecovers(t *testing.T) {
	plan := faultinject.NewServePlan(faultinject.ServePlanConfig{
		ErrorRate: 1, ClearAfter: 3,
	})
	s := newScheduler(t, Config{
		MaxBatch: 1, Workers: 1,
		WrapWorker: chaosWrap(plan),
		Resilience: ResilienceConfig{
			FailureThreshold: 3,
			CooldownBase:     20 * time.Millisecond,
			CooldownCap:      20 * time.Millisecond,
			RetryBudget:      1,
		},
	})
	inputs := genInputs(t, 4, 13)

	// Frame 0 burns its attempts against the erroring backend (3 calls = 3
	// breaker failures = the threshold) and is answered by the fallback.
	resp, err := s.Submit(context.Background(), inputs[0])
	if err != nil {
		t.Fatalf("Submit under errors: %v", err)
	}
	if resp.Result.Quality != decoder.QualityFallback || resp.Result.DegradedBy != DegradedByTransient {
		t.Fatalf("faulted frame: quality %v degraded-by %q, want fallback/%s",
			resp.Result.Quality, resp.Result.DegradedBy, DegradedByTransient)
	}
	st := s.Stats()
	if st.BreakerOpened == 0 {
		t.Fatalf("breaker never opened: %+v", st)
	}
	if st.Retries == 0 {
		t.Fatalf("no retries recorded: %+v", st)
	}
	if st.Health != "degraded" {
		t.Fatalf("health %q with an open breaker, want degraded", st.Health)
	}

	// Frame 1 arrives while the breaker is open: routed straight to the
	// fallback without touching the backend.
	calls := plan.Calls()
	resp, err = s.Submit(context.Background(), inputs[1])
	if err != nil {
		t.Fatalf("Submit with open breaker: %v", err)
	}
	if resp.Result.DegradedBy != DegradedByBreaker {
		t.Fatalf("open-breaker frame degraded by %q, want %s", resp.Result.DegradedBy, DegradedByBreaker)
	}
	if plan.Calls() != calls {
		t.Fatal("open breaker still dispatched to the backend")
	}

	// The fault has cleared (3 calls made); after the cooldown the next frame
	// is the half-open probe, succeeds, and re-closes the breaker.
	time.Sleep(40 * time.Millisecond)
	resp, err = s.Submit(context.Background(), inputs[2])
	if err != nil {
		t.Fatalf("probe Submit: %v", err)
	}
	if resp.Result.Quality != decoder.QualityExact {
		t.Fatalf("probe frame quality %v, want exact", resp.Result.Quality)
	}
	st = s.Stats()
	if st.BreakerReclosed == 0 || st.BreakerProbes == 0 {
		t.Fatalf("breaker never probed/re-closed: %+v", st)
	}
	if st.Health != "ok" {
		t.Fatalf("health %q after recovery, want ok", st.Health)
	}
	if st.FallbackByReason[DegradedByBreaker] == 0 || st.FallbackByReason[DegradedByTransient] == 0 {
		t.Fatalf("fallback reasons not recorded: %v", st.FallbackByReason)
	}
}

// TestRetryRecoversTransientFault: one transient glitch, then clean — the
// retry path must deliver an exact result, not a shed.
func TestRetryRecoversTransientFault(t *testing.T) {
	plan := faultinject.NewServePlan(faultinject.ServePlanConfig{
		ErrorRate: 1, ClearAfter: 1,
	})
	s := newScheduler(t, Config{
		MaxBatch: 1, Workers: 1,
		WrapWorker: chaosWrap(plan),
		Resilience: ResilienceConfig{RetryBudget: 1},
	})
	resp, err := s.Submit(context.Background(), genInputs(t, 1, 17)[0])
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.Result.Quality != decoder.QualityExact {
		t.Fatalf("quality %v after one transient fault, want exact via retry", resp.Result.Quality)
	}
	if st := s.Stats(); st.Retries != 1 {
		t.Fatalf("retries = %d, want 1: %+v", st.Retries, st)
	}
}

// TestGarbageReportCaught: a backend "succeeding" with NaN metrics and empty
// decisions must be treated as a fault, never forwarded to the client.
func TestGarbageReportCaught(t *testing.T) {
	plan := faultinject.NewServePlan(faultinject.ServePlanConfig{
		GarbageRate: 1, ClearAfter: 1,
	})
	s := newScheduler(t, Config{
		MaxBatch: 1, Workers: 1,
		WrapWorker: chaosWrap(plan),
		Resilience: ResilienceConfig{RetryBudget: 1},
	})
	resp, err := s.Submit(context.Background(), genInputs(t, 1, 19)[0])
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if len(resp.Result.SymbolIdx) == 0 {
		t.Fatal("empty decision reached the client")
	}
	if resp.Result.Quality != decoder.QualityExact {
		t.Fatalf("quality %v, want exact via retry after garbage", resp.Result.Quality)
	}
}

// TestQuarantineAfterRepeatedPanics: a permanently crashing backend exhausts
// its restart budget, the worker is quarantined, frames keep flowing via the
// fallback, and (with every worker down) health reads unhealthy.
func TestQuarantineAfterRepeatedPanics(t *testing.T) {
	plan := faultinject.NewServePlan(faultinject.ServePlanConfig{PanicRate: 1})
	s := newScheduler(t, Config{
		MaxBatch: 1, Workers: 1,
		WrapWorker: chaosWrap(plan),
		Resilience: ResilienceConfig{
			MaxRestarts: 2, RestartWindow: time.Minute, RetryBudget: 1,
		},
	})
	for i, in := range genInputs(t, 6, 23) {
		if _, err := s.Submit(context.Background(), in); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Quarantines != 1 {
		t.Fatalf("quarantines = %d, want 1: %+v", st.Quarantines, st)
	}
	if st.Health != "unhealthy" {
		t.Fatalf("health %q with the only worker quarantined, want unhealthy", st.Health)
	}
	if st.FallbackByReason[DegradedByQuarantine] == 0 {
		t.Fatalf("no quarantine-shed frames: %v", st.FallbackByReason)
	}
	// Quarantined workers must answer instantly from the fallback.
	resp, err := s.Submit(context.Background(), genInputs(t, 1, 29)[0])
	if err != nil {
		t.Fatalf("Submit after quarantine: %v", err)
	}
	if resp.Result.DegradedBy != DegradedByQuarantine {
		t.Fatalf("post-quarantine frame degraded by %q, want %s", resp.Result.DegradedBy, DegradedByQuarantine)
	}
}

// TestWedgeTimeout: a decode blocking far past WedgeTimeout is declared
// wedged; the frame is answered by the fallback and the backend replaced.
func TestWedgeTimeout(t *testing.T) {
	plan := faultinject.NewServePlan(faultinject.ServePlanConfig{
		WedgeRate: 1, ClearAfter: 1, WedgeFor: 200 * time.Millisecond,
	})
	s := newScheduler(t, Config{
		MaxBatch: 1, Workers: 1,
		WrapWorker: chaosWrap(plan),
		Resilience: ResilienceConfig{
			WedgeTimeout: 10 * time.Millisecond, RetryBudget: 1, RestartWindow: time.Minute,
		},
	})
	start := time.Now()
	resp, err := s.Submit(context.Background(), genInputs(t, 1, 31)[0])
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.Result.DegradedBy != DegradedByWedge {
		t.Fatalf("wedged frame degraded by %q, want %s", resp.Result.DegradedBy, DegradedByWedge)
	}
	if el := time.Since(start); el > 150*time.Millisecond {
		t.Fatalf("wedged frame took %v, the wedge timeout did not fire", el)
	}
	st := s.Stats()
	if st.Wedges == 0 || st.Restarts == 0 {
		t.Fatalf("wedge not recorded/restarted: %+v", st)
	}
}

// TestHedgedSubmit: with HedgeAfter armed, a slow primary is abandoned and
// the batch answered from the fallback quickly; the abandoned decode's clean
// finish is counted as hedge waste.
func TestHedgedSubmit(t *testing.T) {
	slow := func(_ int, be Backend) Backend {
		return &slowBackend{Backend: be, delay: 100 * time.Millisecond}
	}
	s := newScheduler(t, Config{
		MaxBatch: 1, Workers: 1,
		WrapWorker: slow,
		Resilience: ResilienceConfig{
			HedgeAfter: 5 * time.Millisecond, HedgeBudget: 1, RestartWindow: time.Minute,
		},
	})
	start := time.Now()
	resp, err := s.Submit(context.Background(), genInputs(t, 1, 37)[0])
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.Result.DegradedBy != DegradedByHedge {
		t.Fatalf("hedged frame degraded by %q, want %s", resp.Result.DegradedBy, DegradedByHedge)
	}
	if el := time.Since(start); el > 80*time.Millisecond {
		t.Fatalf("hedged answer took %v, slower than the abandoned primary", el)
	}
	waitStats(t, s, "hedge waste after the primary finishes", func(st Stats) bool {
		return st.Hedges >= 1 && st.HedgeWaste >= 1
	})
}

// TestAbandonedFrame: a submitter whose context expires mid-queue abandons
// only the wait — the frame still decodes with its batch and is counted.
func TestAbandonedFrame(t *testing.T) {
	s, err := New(Config{MaxBatch: 1, Workers: 1}, newSlowFactory(t, 30*time.Millisecond))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := s.Submit(ctx, genInputs(t, 1, 41)[0]); err != context.DeadlineExceeded {
		t.Fatalf("Submit with expired ctx: %v, want deadline exceeded", err)
	}
	waitStats(t, s, "abandoned frame accounting", func(st Stats) bool {
		return st.Abandoned == 1 && st.Completed == 1
	})
}

// TestChaosSoak is the in-process half of the chaos-smoke acceptance: a
// mixed-fault storm followed by a clean recovery phase. Every frame must be
// answered, the breaker must open, health must return to ok, and the served
// detections must be no worse than the plain zero-forcing floor.
func TestChaosSoak(t *testing.T) {
	const frames = 120
	plan := faultinject.NewServePlan(faultinject.ServePlanConfig{
		PanicRate: 0.1, StallRate: 0.1, GarbageRate: 0.2, ErrorRate: 0.4,
		StallFor: 500 * time.Microsecond, ClearAfter: 40, Seed: 3,
	})
	s := newScheduler(t, Config{
		MaxBatch: 1, Workers: 1,
		WrapWorker: chaosWrap(plan),
		Resilience: ResilienceConfig{
			FailureThreshold: 3,
			CooldownBase:     5 * time.Millisecond,
			CooldownCap:      10 * time.Millisecond,
			RetryBudget:      0.5,
			RestartWindow:    time.Minute,
			MaxRestarts:      1000, // storm phase: keep restarting, never quarantine
			Seed:             3,
		},
	})

	r := rng.New(99)
	cons := constellation.New(testMIMO.Mod)
	zf := decoder.NewZF(cons)
	var servedErrs, zfErrs, bits int
	for i := 0; i < frames; i++ {
		// When the breaker is open, pause past its cooldown so the next
		// submit is a half-open probe: each probe reaches the backend and
		// advances the plan toward its all-clear, so the storm always ends
		// and the breaker can re-close.
		if i > 0 && s.Stats().Health != "ok" {
			time.Sleep(12 * time.Millisecond)
		}
		f, err := mimo.GenerateFrame(r, testMIMO, 14)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := s.Submit(context.Background(), core.BatchInput{H: f.H, Y: f.Y, NoiseVar: f.NoiseVar})
		if err != nil {
			t.Fatalf("frame %d unanswered under chaos: %v", i, err)
		}
		if len(resp.Result.SymbolIdx) != testMIMO.Tx {
			t.Fatalf("frame %d: %d decisions for %d antennas", i, len(resp.Result.SymbolIdx), testMIMO.Tx)
		}
		servedErrs += mimo.CountBitErrors(cons, f.SymbolIdx, resp.Result.SymbolIdx)
		zfRes, err := zf.Decode(f.H, f.Y, f.NoiseVar)
		if err != nil {
			t.Fatal(err)
		}
		zfErrs += mimo.CountBitErrors(cons, f.SymbolIdx, zfRes.SymbolIdx)
		bits += len(f.Bits)
	}

	st := s.Stats()
	if st.Completed != frames {
		t.Fatalf("completed %d of %d frames: %+v", st.Completed, frames, st)
	}
	if st.BreakerOpened == 0 {
		t.Fatalf("the storm never opened the breaker: %+v", st)
	}
	if st.Health != "ok" {
		t.Fatalf("health %q after recovery phase, want ok", st.Health)
	}
	if servedErrs > zfErrs {
		t.Fatalf("served BER %d/%d worse than the ZF floor %d/%d under chaos",
			servedErrs, bits, zfErrs, bits)
	}
	t.Logf("soak: %d frames, bit errors served=%d zf=%d, stats: panics=%d restarts=%d retries=%d breaker open/reclose=%d/%d fallback=%v",
		frames, servedErrs, zfErrs, st.Panics, st.Restarts, st.Retries,
		st.BreakerOpened, st.BreakerReclosed, st.FallbackByReason)
}

// TestResilienceDisableMatchesSeedPath: with Disable set, the decode path is
// the bare backend call — exact results, no resilience accounting.
func TestResilienceDisableMatchesSeedPath(t *testing.T) {
	s := newScheduler(t, Config{
		MaxBatch: 2, Workers: 1,
		Resilience: ResilienceConfig{Disable: true},
	})
	for i, in := range genInputs(t, 4, 43) {
		resp, err := s.Submit(context.Background(), in)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		if resp.Result.Quality != decoder.QualityExact {
			t.Fatalf("frame %d quality %v", i, resp.Result.Quality)
		}
	}
	st := s.Stats()
	if st.Retries != 0 || st.Panics != 0 || len(st.FallbackByReason) != 0 {
		t.Fatalf("disabled layer recorded resilience activity: %+v", st)
	}
}

// TestHealthStateRoundTrip covers the Parse(String()) inverse across every
// state, plus rejection of garbage.
func TestHealthStateRoundTrip(t *testing.T) {
	for _, h := range []HealthState{HealthOK, HealthDegraded, HealthDraining, HealthUnhealthy} {
		got, err := ParseHealthState(h.String())
		if err != nil || got != h {
			t.Errorf("ParseHealthState(%q) = %v, %v", h.String(), got, err)
		}
	}
	if _, err := ParseHealthState("sideways"); err == nil {
		t.Error("ParseHealthState accepted garbage")
	}
}

// TestQualityRoundTrip covers decoder.ParseQuality across every grade.
func TestQualityRoundTrip(t *testing.T) {
	for _, q := range []decoder.Quality{decoder.QualityExact, decoder.QualityBestEffort, decoder.QualityFallback} {
		got, err := decoder.ParseQuality(q.String())
		if err != nil || got != q {
			t.Errorf("ParseQuality(%q) = %v, %v", q.String(), got, err)
		}
	}
	if _, err := decoder.ParseQuality("miraculous"); err == nil {
		t.Error("ParseQuality accepted garbage")
	}
}

// TestConcurrentChaos hammers a multi-worker scheduler with concurrent
// submitters during a fault storm — the no-crash, every-frame-answered
// contract under real contention (meaningful mostly under -race).
func TestConcurrentChaos(t *testing.T) {
	plan := faultinject.NewServePlan(faultinject.ServePlanConfig{
		PanicRate: 0.05, GarbageRate: 0.05, ErrorRate: 0.1, ClearAfter: 100, Seed: 5,
	})
	s := newScheduler(t, Config{
		MaxBatch: 4, Workers: 3, Policy: ShedToLinear,
		WrapWorker: chaosWrap(plan),
		Resilience: ResilienceConfig{
			FailureThreshold: 3,
			CooldownBase:     2 * time.Millisecond,
			CooldownCap:      10 * time.Millisecond,
			RetryBudget:      0.5,
			RestartWindow:    time.Minute,
			MaxRestarts:      1000,
			Seed:             5,
		},
	})
	inputs := genInputs(t, 64, 47)
	var wg sync.WaitGroup
	errs := make(chan error, len(inputs))
	for i := range inputs {
		wg.Add(1)
		go func(in core.BatchInput) {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), in); err != nil {
				errs <- err
			}
		}(inputs[i])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("Submit under concurrent chaos: %v", err)
	}
	st := s.Stats()
	if got := st.Completed + st.Shed; got != uint64(len(inputs)) {
		t.Fatalf("answered %d of %d frames: %+v", got, len(inputs), st)
	}
}
