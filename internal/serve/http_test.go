package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// wireRequest converts a test input into the JSON wire form.
func wireRequest(t *testing.T, n int, seed uint64) []byte {
	t.Helper()
	in := genInputs(t, n, seed)[n-1]
	req := DecodeRequest{NoiseVar: in.NoiseVar}
	for i := 0; i < in.H.Rows; i++ {
		row := make([][2]float64, in.H.Cols)
		for j, v := range in.H.Row(i) {
			row[j] = [2]float64{real(v), imag(v)}
		}
		req.H = append(req.H, row)
	}
	for _, v := range in.Y {
		req.Y = append(req.Y, [2]float64{real(v), imag(v)})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func newTestServer(t *testing.T, cfg Config) (*Scheduler, *httptest.Server) {
	t.Helper()
	s := newScheduler(t, cfg)
	srv := httptest.NewServer(NewHandler(s, testMIMO.Tx, testMIMO.Rx, "4-QAM"))
	t.Cleanup(srv.Close)
	return s, srv
}

func TestHTTPDecodeRoundTrip(t *testing.T) {
	s, srv := newTestServer(t, Config{MaxBatch: 4, MaxWait: time.Millisecond})
	resp, err := http.Post(srv.URL+"/v1/decode", "application/json", bytes.NewReader(wireRequest(t, 1, 61)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out DecodeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.SymbolIndices) != testMIMO.Tx {
		t.Fatalf("got %d symbols, want %d", len(out.SymbolIndices), testMIMO.Tx)
	}
	if len(out.Bits) != testMIMO.Tx*2 { // 4-QAM: 2 bits/symbol
		t.Fatalf("got %d bits, want %d", len(out.Bits), testMIMO.Tx*2)
	}
	if out.Quality != "exact" {
		t.Fatalf("quality %q", out.Quality)
	}
	if out.BatchSize < 1 {
		t.Fatalf("batch size %d", out.BatchSize)
	}
	if st := s.Stats(); st.Completed != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, srv := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
	}{
		{"malformed json", "{nope"},
		{"empty body", "{}"},
		{"ragged matrix", `{"h":[[[1,0],[0,1]],[[1,0]]],"y":[[1,0],[0,1]],"noise_var":0.1}`},
		{"bad noise var", strings.Replace(string(wireRequest(t, 1, 67)), `"noise_var":`, `"noise_var":-`, 1)},
	}
	for _, c := range cases {
		resp, err := http.Post(srv.URL+"/v1/decode", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
	}
}

func TestHTTPConfigMetricsHealth(t *testing.T) {
	s, srv := newTestServer(t, Config{MaxBatch: 8, MaxWait: 2 * time.Millisecond, Policy: ShedToLinear})

	var info ConfigInfo
	resp, err := http.Get(srv.URL + "/v1/config")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.TxAntennas != testMIMO.Tx || info.RxAntennas != testMIMO.Rx || info.Modulation != "4-QAM" {
		t.Fatalf("config %+v", info)
	}
	if info.MaxBatch != 8 || info.Policy != "shed-to-linear" {
		t.Fatalf("config %+v", info)
	}

	// Decode one frame, then metrics must reflect it.
	resp, err = http.Post(srv.URL+"/v1/decode", "application/json", bytes.NewReader(wireRequest(t, 1, 71)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var st Stats
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Completed != 1 || st.Batches != 1 || st.QualityCounts["exact"] != 1 {
		t.Fatalf("metrics %+v", st)
	}

	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", resp.StatusCode)
	}
	s.Close()
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after Close: %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/v1/decode", "application/json", bytes.NewReader(wireRequest(t, 1, 71)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("decode after Close: %d, want 503", resp.StatusCode)
	}
}

func TestHTTPOverloadStatus(t *testing.T) {
	s, err := New(Config{MaxBatch: 1, MaxWait: time.Millisecond, Workers: 1, QueueCap: 1, Policy: Reject},
		newSlowFactory(t, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	srv := httptest.NewServer(NewHandler(s, testMIMO.Tx, testMIMO.Rx, "4-QAM"))
	t.Cleanup(srv.Close)

	body := wireRequest(t, 1, 73)
	codes := make(chan int, 12)
	for i := 0; i < cap(codes); i++ {
		go func() {
			resp, err := http.Post(srv.URL+"/v1/decode", "application/json", bytes.NewReader(body))
			if err != nil {
				codes <- 0
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	got := map[int]int{}
	for i := 0; i < cap(codes); i++ {
		got[<-codes]++
	}
	if got[http.StatusTooManyRequests] == 0 {
		t.Fatalf("no 429s under saturation: %v", got)
	}
	if got[http.StatusOK] == 0 {
		t.Fatalf("no successes under saturation: %v", got)
	}
}
