package serve

import (
	"math"

	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/decoder"
	"repro/internal/faultinject"
)

// SDCBackend wraps a Backend with a faultinject.SDCPlan, injecting *silent*
// data corruptions: unlike FaultyBackend's visible misbehaviour (panics,
// errors, stalls), every injected fault here leaves a decode that appears to
// succeed. Each corruption site exercises exactly one defense layer — a
// poisoned cached QR factor must be caught by verify-on-hit, a flipped GEMM
// output by the ABFT checksums, a flipped result metric by the serving
// layer's re-encode audit. The plan's Landed counters record the injections
// that actually applied, giving chaos harnesses ground truth to compare the
// detection counters against. Install via Config.WrapWorker.
type SDCBackend struct {
	inner Backend
	plan  *faultinject.SDCPlan
}

// NewSDCBackend wraps inner with the silent-corruption plan.
func NewSDCBackend(inner Backend, plan *faultinject.SDCPlan) *SDCBackend {
	return &SDCBackend{inner: inner, plan: plan}
}

// gemmFaultArmer is the Backend facet the gemm site needs
// (core.Accelerator implements it).
type gemmFaultArmer interface {
	ArmGEMMFault()
	DisarmGEMMFault() bool
}

// qrCorrupter is the Backend facet the qr site needs
// (core.Accelerator implements it).
type qrCorrupter interface {
	CorruptQREntry(word int) bool
}

// Name marks the wrapped backend so health reports show the chaos wiring.
func (b *SDCBackend) Name() string { return b.inner.Name() + "+sdc" }

// Constellation passes through.
func (b *SDCBackend) Constellation() *constellation.Constellation { return b.inner.Constellation() }

// ValidateInput passes through: admission must stay honest under chaos.
func (b *SDCBackend) ValidateInput(in core.BatchInput) error { return b.inner.ValidateInput(in) }

// DecodeFallback passes through clean — the fallback is the recovery path
// the SDC scenarios verify, so it is never the corruption site.
func (b *SDCBackend) DecodeFallback(in core.BatchInput) (*decoder.Result, error) {
	return b.inner.DecodeFallback(in)
}

// PreprocessCacheStats passes through (zeros when the inner backend does not
// report) so the QR ledger survives the wrapping.
func (b *SDCBackend) PreprocessCacheStats() (hits, misses int64) {
	if cs, ok := b.inner.(cacheStatser); ok {
		return cs.PreprocessCacheStats()
	}
	return 0, 0
}

// PreprocessCacheSDCEvictions passes through for the same reason.
func (b *SDCBackend) PreprocessCacheSDCEvictions() int64 {
	if ss, ok := b.inner.(sdcStatser); ok {
		return ss.PreprocessCacheSDCEvictions()
	}
	return 0
}

// DecodeBatch rolls the plan once per call and injects the drawn corruption.
func (b *SDCBackend) DecodeBatch(inputs []core.BatchInput, opts ...core.BatchOption) (*core.BatchReport, error) {
	fault := b.plan.Next()

	switch fault {
	case faultinject.SDCQR:
		// Poison the most recently cached QR factor *before* the decode: a
		// frame in this batch (or a later one) sharing that channel takes the
		// cache hit, and verify-on-hit must evict instead of serving it. The
		// corrupted bit index varies with the call count so different words
		// (mantissa spread across the payload) get exercised.
		if qc, ok := b.inner.(qrCorrupter); ok && qc.CorruptQREntry(b.plan.Calls()) {
			b.plan.Landed(faultinject.SDCQR)
		}
	case faultinject.SDCGEMM:
		// Arm the accelerator's one-shot GEMM bit flip; whether it lands
		// depends on the decode actually routing through the batched product
		// (policy may be linear or rvd-se), checked after the call.
		if ga, ok := b.inner.(gemmFaultArmer); ok {
			ga.ArmGEMMFault()
		}
	}

	rep, err := b.inner.DecodeBatch(inputs, opts...)

	switch fault {
	case faultinject.SDCGEMM:
		if ga, ok := b.inner.(gemmFaultArmer); ok {
			// Disarm returns false when the armed flip was consumed — it
			// landed in a product. Left armed (linear policy, rvd-se), it is
			// withdrawn so it cannot leak into a later unrelated decode.
			if !ga.DisarmGEMMFault() {
				b.plan.Landed(faultinject.SDCGEMM)
			}
		}
	case faultinject.SDCMetric:
		// Corrupt the reported metric of the first frame after the search —
		// result-path corruption past every in-search defense. The sign-bit
		// flip models an upset in the metric register; only a strictly
		// positive metric flips to something detectably wrong (−0.0 is not
		// negative), so zero metrics are left alone and do not count as landed.
		if err == nil && rep != nil && len(rep.Results) > 0 &&
			rep.Results[0] != nil && rep.Results[0].Metric > 0 {
			rep.Results[0].Metric = math.Float64frombits(
				math.Float64bits(rep.Results[0].Metric) ^ (1 << 63))
			b.plan.Landed(faultinject.SDCMetric)
		}
	}
	return rep, err
}
