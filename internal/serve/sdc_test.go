package serve

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/cmatrix"
	"repro/internal/core"
	"repro/internal/decoder"
	"repro/internal/faultinject"
	"repro/internal/fpga"
	"repro/internal/integrity"
)

// honestReport decodes inputs directly (no scheduler) and returns the report,
// giving the audit tests real metrics to corrupt.
func honestReport(t *testing.T, inputs []core.BatchInput) *core.BatchReport {
	t.Helper()
	acc, err := core.New(fpga.Optimized, testMIMO.Mod, testMIMO.Tx, testMIMO.Rx, core.Options{ScalarEval: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := acc.DecodeBatch(inputs)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// cloneReport deep-copies results so each table case corrupts its own copy.
func cloneReport(rep *core.BatchReport) *core.BatchReport {
	out := &core.BatchReport{Results: make([]*decoder.Result, len(rep.Results))}
	for i, res := range rep.Results {
		if res == nil {
			continue
		}
		c := *res
		c.SymbolIdx = append([]int(nil), res.SymbolIdx...)
		c.Symbols = append(cmatrix.Vector(nil), res.Symbols...)
		out.Results[i] = &c
	}
	return out
}

// TestCheckReportAudit is the table over the report checker's verdicts: honest
// reports pass every mode, shape/finiteness garbage is errGarbage, and
// metrics inconsistent with the re-encoded residual — negative, inflated, or
// plain wrong — are errIntegrityAudit. The "absurd but finite" rows pin the
// fix for the original checker, which accepted any finite metric.
func TestCheckReportAudit(t *testing.T) {
	inputs := genInputs(t, 2, 41)
	rep := honestReport(t, inputs)

	residual0 := integrity.ReEncode(inputs[0].H, inputs[0].Y, rep.Results[0].Symbols, nil).ResidualSq

	cases := []struct {
		name   string
		mutate func(r *core.BatchReport)
		mode   auditMode
		want   error // nil, errGarbage, or errIntegrityAudit
		// report overrides the default (a fresh clone of the honest report)
		// for the shape cases.
		report func() *core.BatchReport
	}{
		{name: "honest exact-l2", mode: auditExactL2, want: nil},
		{name: "honest bound", mode: auditBound, want: nil},
		{name: "honest fp16 slack", mode: auditBoundFP16, want: nil},
		{name: "honest audit off", mode: auditOff, want: nil},
		{
			name: "zero metric passes bound mode", mode: auditBound, want: nil,
			// An ℓ∞ partial distance may legitimately sit far below the ℓ²
			// residual; only the residual is an upper bound.
			mutate: func(r *core.BatchReport) { r.Results[0].Metric = 0 },
		},
		{
			name: "negative metric", mode: auditExactL2, want: errIntegrityAudit,
			mutate: func(r *core.BatchReport) { r.Results[0].Metric = -r.Results[0].Metric - 1 },
		},
		{
			name: "negative metric bound mode", mode: auditBound, want: errIntegrityAudit,
			mutate: func(r *core.BatchReport) { r.Results[0].Metric = -1e-9 },
		},
		{
			name: "sign-flipped metric", mode: auditExactL2, want: errIntegrityAudit,
			mutate: func(r *core.BatchReport) {
				m := &r.Results[1].Metric
				*m = math.Float64frombits(math.Float64bits(*m) ^ (1 << 63))
			},
		},
		{
			name: "inflated finite metric", mode: auditExactL2, want: errIntegrityAudit,
			mutate: func(r *core.BatchReport) { r.Results[0].Metric = residual0*1.5 + 1 },
		},
		{
			name: "absurd finite metric bound mode", mode: auditBound, want: errIntegrityAudit,
			mutate: func(r *core.BatchReport) { r.Results[0].Metric = residual0 + 1e6 },
		},
		{
			name: "absurd metric beyond fp16 slack", mode: auditBoundFP16, want: errIntegrityAudit,
			mutate: func(r *core.BatchReport) { r.Results[0].Metric = residual0*2 + 1e6 },
		},
		{
			name: "corrupted metric with audit off", mode: auditOff, want: nil,
			// The escape hatch really does disable the defense.
			mutate: func(r *core.BatchReport) { r.Results[0].Metric = residual0 + 1e6 },
		},
		{
			name: "corrupted symbol vector", mode: auditExactL2, want: errIntegrityAudit,
			mutate: func(r *core.BatchReport) { r.Results[0].Symbols[0] *= 4 },
		},
		{
			name: "NaN symbols", mode: auditExactL2, want: errGarbage,
			// NaN ŝ makes the residual NaN and every tolerance comparison
			// false — this must be caught as garbage, not pass the audit.
			mutate: func(r *core.BatchReport) { r.Results[0].Symbols[1] = complex(math.NaN(), 0) },
		},
		{
			name: "short symbol vector", mode: auditExactL2, want: errGarbage,
			mutate: func(r *core.BatchReport) { r.Results[0].Symbols = r.Results[0].Symbols[:1] },
		},
		{
			name: "NaN metric", mode: auditOff, want: errGarbage,
			mutate: func(r *core.BatchReport) { r.Results[0].Metric = math.NaN() },
		},
		{
			name: "empty decision", mode: auditOff, want: errGarbage,
			mutate: func(r *core.BatchReport) { r.Results[1].SymbolIdx = nil },
		},
		{
			name: "nil report", mode: auditOff, want: errGarbage,
			report: func() *core.BatchReport { return nil },
		},
		{
			name: "length mismatch", mode: auditOff, want: errGarbage,
			report: func() *core.BatchReport { return &core.BatchReport{Results: rep.Results[:1]} },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var r *core.BatchReport
			if tc.report != nil {
				r = tc.report()
			} else {
				r = cloneReport(rep)
			}
			if tc.mutate != nil {
				tc.mutate(r)
			}
			err := checkReport(r, inputs, tc.mode)
			switch {
			case tc.want == nil && err != nil:
				t.Fatalf("checkReport = %v, want nil", err)
			case tc.want != nil && !errors.Is(err, tc.want):
				t.Fatalf("checkReport = %v, want %v", err, tc.want)
			}
			if tc.want == errIntegrityAudit && !errors.Is(err, integrity.ErrIntegrity) {
				t.Fatalf("audit failure %v does not carry integrity.ErrIntegrity", err)
			}
		})
	}
}

// sdcFactory builds verified-GEMM accelerators: the soak needs the ABFT
// defense on so injected GEMM flips are repaired rather than propagated.
func sdcFactory(t *testing.T) func() (Backend, error) {
	t.Helper()
	return func() (Backend, error) {
		return core.New(fpga.Optimized, testMIMO.Mod, testMIMO.Tx, testMIMO.Rx, core.Options{VerifyGEMM: true})
	}
}

// TestSDCSoak drives sustained traffic through a worker wrapped with a seeded
// silent-corruption plan targeting all three sites and checks the end-to-end
// contract: every frame served as exact carries a metric consistent with its
// re-encoded residual (zero corrupted frames shipped), each site's detection
// counters account for the injections that landed, and the Prometheus surface
// exposes them.
func TestSDCSoak(t *testing.T) {
	plan := faultinject.NewSDCPlan(faultinject.SDCPlanConfig{
		QRRate: 0.1, GEMMRate: 0.15, MetricRate: 0.15, Seed: 23,
	})
	s, err := New(Config{
		MaxBatch: 1, MaxWait: time.Millisecond, Workers: 1,
		WrapWorker: func(_ int, be Backend) Backend { return NewSDCBackend(be, plan) },
		Resilience: ResilienceConfig{
			RetryBudget: 1, RetryMax: 2,
			// The soak injects far more corruption than real hardware ever
			// would; keep the worker in play so every site accumulates.
			SDCQuarantineLimit: 1 << 20,
		},
	}, sdcFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// A small channel pool, cycled: repeats hit the QR cache, so poisoned
	// entries are reached and verify-on-hit gets to answer for them.
	pool := genInputs(t, 4, 17)
	const frames = 240
	scratch := make(cmatrix.Vector, testMIMO.Rx)
	for i := 0; i < frames; i++ {
		in := pool[i%len(pool)]
		resp, err := s.Submit(context.Background(), in)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		res := resp.Result
		if res.Metric < 0 || math.IsNaN(res.Metric) || math.IsInf(res.Metric, 0) {
			t.Fatalf("frame %d served corrupted metric %g (quality %v)", i, res.Metric, res.Quality)
		}
		if res.Quality == decoder.QualityExact {
			audit := integrity.ReEncode(in.H, in.Y, res.Symbols, scratch)
			if aerr := audit.CheckExactL2(res.Metric); aerr != nil {
				t.Fatalf("frame %d served as exact but corrupted: %v", i, aerr)
			}
		}
	}

	st := s.Stats()
	landedQR := plan.LandedCount(faultinject.SDCQR)
	landedGEMM := plan.LandedCount(faultinject.SDCGEMM)
	landedMetric := plan.LandedCount(faultinject.SDCMetric)
	t.Logf("landed: qr=%d gemm=%d metric=%d; detected: %v recovered=%d",
		landedQR, landedGEMM, landedMetric, st.SDCDetected, st.SDCRecovered)
	if landedQR == 0 || landedGEMM == 0 || landedMetric == 0 {
		t.Fatalf("soak landed nothing at some site: qr=%d gemm=%d metric=%d", landedQR, landedGEMM, landedMetric)
	}

	// Every armed-and-consumed GEMM flip is caught by the ABFT checksum in
	// the same decode, so detection matches landings exactly.
	if got := st.SDCDetected[integrity.SiteGEMM]; got != uint64(landedGEMM) {
		t.Fatalf("gemm detections %d != landed %d", got, landedGEMM)
	}
	// Every landed metric flip fails the re-encode audit of its attempt.
	if got := st.SDCDetected[integrity.SiteMetricAudit]; got < uint64(landedMetric) {
		t.Fatalf("metric-audit detections %d < landed %d", got, landedMetric)
	}
	// Poisoned cache entries are detected on their next hit. Back-to-back
	// corruptions of the same entry collapse into one eviction, so the
	// counter is bounded by landings but must account for most of them.
	if ev := st.QRCacheSDCEvictions; ev == 0 || ev > uint64(landedQR) {
		t.Fatalf("qr-cache evictions %d outside (0, landed=%d]", ev, landedQR)
	}
	if st.SDCDetected[integrity.SiteQRCache] != st.QRCacheSDCEvictions {
		t.Fatalf("qr-cache site %d != evictions %d", st.SDCDetected[integrity.SiteQRCache], st.QRCacheSDCEvictions)
	}
	if st.SDCRecovered == 0 || st.SDCRecovered < st.SDCDetected[integrity.SiteGEMM] {
		t.Fatalf("recovered %d does not cover detections %v", st.SDCRecovered, st.SDCDetected)
	}

	_, hr := s.Health()
	if hr.SDCDetected == 0 {
		t.Fatal("health report shows zero worker-attributed SDC detections")
	}

	var buf bytes.Buffer
	WritePrometheus(&buf, st)
	out := buf.String()
	for _, want := range []string{
		`mimosd_sdc_detected_total{site="gemm"}`,
		`mimosd_sdc_detected_total{site="metric-audit"}`,
		`mimosd_sdc_detected_total{site="qr-cache"}`,
		"mimosd_sdc_recovered_total",
		"mimosd_qr_cache_sdc_evictions_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %s", want)
		}
	}
}

// TestSDCQuarantineFlakyWorker pins the quarantine contract: a worker whose
// decodes keep failing the integrity audit exhausts its SDC allowance and is
// taken out of rotation, while every frame is still answered (honestly
// degraded, never corrupted).
func TestSDCQuarantineFlakyWorker(t *testing.T) {
	plan := faultinject.NewSDCPlan(faultinject.SDCPlanConfig{MetricRate: 1, Seed: 5})
	s, err := New(Config{
		MaxBatch: 1, MaxWait: time.Millisecond, Workers: 1,
		WrapWorker: func(_ int, be Backend) Backend { return NewSDCBackend(be, plan) },
		Resilience: ResilienceConfig{
			RetryBudget: 1, RetryMax: 1,
			SDCQuarantineLimit: 3, SDCWindow: time.Minute,
		},
	}, sdcFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for i, in := range genInputs(t, 8, 3) {
		resp, err := s.Submit(context.Background(), in)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		res := resp.Result
		if res.Quality == decoder.QualityExact {
			// With every metric flipped and retries capped, no primary result
			// should survive the audit; exact frames would mean corruption
			// slipped through.
			audit := integrity.ReEncode(in.H, in.Y, res.Symbols, nil)
			if aerr := audit.CheckExactL2(res.Metric); aerr != nil {
				t.Fatalf("frame %d served as exact but corrupted: %v", i, aerr)
			}
		}
		if res.DegradedBy != "" && res.DegradedBy != DegradedByIntegrity && res.DegradedBy != DegradedByQuarantine {
			t.Fatalf("frame %d degraded by %q, want integrity or quarantine", i, res.DegradedBy)
		}
	}

	_, hr := s.Health()
	if len(hr.Backends) != 1 || !hr.Backends[0].Quarantined {
		t.Fatalf("flaky worker not quarantined: %+v", hr.Backends)
	}
	if hr.Backends[0].SDCDetected < 3 {
		t.Fatalf("worker SDC count %d < quarantine limit 3", hr.Backends[0].SDCDetected)
	}
	st := s.Stats()
	if st.Quarantines == 0 {
		t.Fatal("Stats.Quarantines is zero after SDC quarantine")
	}
	if st.FallbackByReason[DegradedByIntegrity]+st.FallbackByReason[DegradedByQuarantine] == 0 {
		t.Fatalf("no frames shed for integrity/quarantine: %v", st.FallbackByReason)
	}
}
