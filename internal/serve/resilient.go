package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cmatrix"
	"repro/internal/core"
	"repro/internal/decoder"
	"repro/internal/integrity"
	"repro/internal/resilience"
	"repro/internal/sphere"
)

// ResilienceConfig tunes the scheduler's self-healing layer: worker
// supervision (panic recovery, backend restarts, quarantine), the per-backend
// circuit breaker, budgeted retries for transient faults, and hedged submits
// for tail batches. The zero value enables supervision and the breaker with
// defaults; hedging and wedge detection stay off until their timers are set
// (both arm a goroutine per dispatch, which the no-fault hot path should not
// pay for by default).
type ResilienceConfig struct {
	// Disable turns the whole layer off — the seed behaviour, where a
	// panicking backend kills the process. Exists for A/B benchmarks.
	Disable bool
	// FailureThreshold trips a worker's breaker after this many consecutive
	// decode failures. Default 5.
	FailureThreshold int
	// CooldownBase / CooldownCap bound the breaker's decorrelated-jitter
	// open dwell. Defaults 100ms / 5s.
	CooldownBase time.Duration
	CooldownCap  time.Duration
	// MaxRestarts is the backend-rebuild allowance per RestartWindow before
	// the backend is quarantined (served by the linear fallback from then
	// on). Defaults 3 / 30s.
	MaxRestarts   int
	RestartWindow time.Duration
	// RetryMax is the extra decode attempts per batch for transient faults.
	// Default 2.
	RetryMax int
	// RetryBudget is the retry allowance earned per successful batch (token
	// bucket, so fault storms shed instead of amplifying). Default 0.2.
	RetryBudget float64
	// RetryBase / RetryCap bound the full-jitter retry backoff.
	// Defaults 1ms / 50ms.
	RetryBase time.Duration
	RetryCap  time.Duration
	// HedgeAfter, when > 0, abandons a primary decode that has run this
	// long and answers the batch from the linear fallback instead (a hedged
	// submit for tail frames nearing their deadline). The abandoned decode
	// keeps running on a detached goroutine — its backend is replaced — and
	// its eventual outcome still feeds the breaker.
	HedgeAfter time.Duration
	// HedgeBudget is the hedge allowance earned per successful batch.
	// Default 0.1.
	HedgeBudget float64
	// WedgeTimeout, when > 0, declares a primary decode wedged after this
	// long: the batch is answered from the fallback, the backend replaced,
	// and the breaker debited. Catches slow-leak wedges panic recovery
	// cannot see.
	WedgeTimeout time.Duration
	// DisableAudit turns off the per-frame re-encode integrity audit of
	// decode reports (the metric cross-check against ‖y − H·ŝ‖ recomputed
	// from the original inputs). On by default: a corrupted metric must
	// never ship tagged exact. Exists for A/B overhead pricing.
	DisableAudit bool
	// SDCQuarantineLimit is the per-worker allowance of detected silent data
	// corruptions (ABFT repairs, failed metric audits) per SDCWindow before
	// the worker is quarantined — hardware that keeps flipping bits has
	// failed, even if every flip so far was caught. Default 8.
	SDCQuarantineLimit int
	// SDCWindow is the sliding window the SDC allowance covers. Defaults to
	// RestartWindow.
	SDCWindow time.Duration
	// Seed drives the breaker/backoff jitter streams.
	Seed uint64
}

func (r ResilienceConfig) withDefaults() ResilienceConfig {
	if r.FailureThreshold <= 0 {
		r.FailureThreshold = 5
	}
	if r.CooldownBase <= 0 {
		r.CooldownBase = 100 * time.Millisecond
	}
	if r.CooldownCap <= 0 {
		r.CooldownCap = 5 * time.Second
	}
	if r.MaxRestarts <= 0 {
		r.MaxRestarts = 3
	}
	if r.RestartWindow <= 0 {
		r.RestartWindow = 30 * time.Second
	}
	if r.RetryMax <= 0 {
		r.RetryMax = 2
	}
	if r.RetryBudget == 0 {
		r.RetryBudget = 0.2
	}
	if r.RetryBase <= 0 {
		r.RetryBase = time.Millisecond
	}
	if r.RetryCap <= 0 {
		r.RetryCap = 50 * time.Millisecond
	}
	if r.HedgeBudget == 0 {
		r.HedgeBudget = 0.1
	}
	if r.SDCQuarantineLimit <= 0 {
		r.SDCQuarantineLimit = 8
	}
	if r.SDCWindow <= 0 {
		r.SDCWindow = r.RestartWindow
	}
	return r
}

// Degradation reasons specific to the serving resilience layer, recorded in
// Result.DegradedBy alongside the decoder-level reasons.
const (
	// DegradedByPanic marks frames answered by the fallback because the
	// accelerator panicked (and retries were exhausted or unavailable).
	DegradedByPanic = "worker-panic"
	// DegradedByBreaker marks frames routed around an open circuit breaker.
	DegradedByBreaker = "breaker-open"
	// DegradedByQuarantine marks frames served by a quarantined worker.
	DegradedByQuarantine = "quarantine"
	// DegradedByTransient marks frames answered by the fallback after
	// transient decode faults exhausted their retry budget.
	DegradedByTransient = "transient-error"
	// DegradedByHedge marks frames answered by a hedged fallback submit.
	DegradedByHedge = "hedge"
	// DegradedByWedge marks frames answered by the fallback after the
	// primary decode exceeded the wedge timeout.
	DegradedByWedge = "wedge-timeout"
	// DegradedByIntegrity marks frames answered by the fallback after the
	// primary decode repeatedly failed the re-encode integrity audit —
	// detected silent data corruption that retries could not clear.
	DegradedByIntegrity = "integrity"
)

// Internal attempt-failure sentinels.
var (
	errHedged = errors.New("serve: primary decode abandoned for a hedged fallback")
	errWedged = fmt.Errorf("serve: primary decode exceeded the wedge timeout: %w", resilience.ErrTransient)
	// errGarbage is transient: a glitched transfer can corrupt one batch
	// without the next being doomed.
	errGarbage = fmt.Errorf("serve: backend returned a malformed report: %w", resilience.ErrTransient)
	// errIntegrityAudit is transient for the same reason, but additionally
	// carries integrity.ErrIntegrity so the caller can count the detection
	// and debit the worker's SDC quarantine budget.
	errIntegrityAudit = fmt.Errorf("serve: decode report failed the re-encode integrity audit: %w", resilience.ErrTransient)
)

// workerCtl is one supervised decode worker: its (replaceable) backend, its
// circuit breaker, and its restart bookkeeping.
type workerCtl struct {
	id       int
	breaker  *resilience.Breaker
	restarts *resilience.RestartBudget
	// sdcBudget meters detected silent corruptions attributed to this worker
	// (ABFT repairs in its decodes, failed metric audits): each detection
	// spends one token, and exhaustion quarantines the worker — caught flips
	// are still evidence of failing hardware.
	sdcBudget *resilience.RestartBudget

	// be is replaced on restart; beLost marks a backend abandoned to a
	// detached goroutine (hedge/wedge) that must be replaced before reuse.
	// Only the owning worker goroutine touches be/beLost outside Health().
	mu     sync.Mutex
	be     Backend
	beLost bool

	quarantined  atomic.Bool
	panics       atomic.Uint64
	restartCount atomic.Uint64
	sdcDetected  atomic.Uint64
}

// backend returns the worker's current backend under the lock (Health reads
// concurrently with restarts).
func (w *workerCtl) backend() Backend {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.be
}

// HealthState grades the scheduler for /healthz.
type HealthState int

const (
	// HealthOK: accepting work, every backend live with a closed breaker.
	HealthOK HealthState = iota
	// HealthDegraded: accepting work, but at least one backend is behind an
	// open/half-open breaker or quarantined — capacity or quality reduced.
	HealthDegraded
	// HealthDraining: Close has begun; queued work finishes, new work is
	// refused.
	HealthDraining
	// HealthUnhealthy: every backend is quarantined — only the linear
	// fallback is answering.
	HealthUnhealthy
)

// String names the state as served by /healthz.
func (h HealthState) String() string {
	switch h {
	case HealthOK:
		return "ok"
	case HealthDegraded:
		return "degraded"
	case HealthDraining:
		return "draining"
	case HealthUnhealthy:
		return "unhealthy"
	default:
		return fmt.Sprintf("HealthState(%d)", int(h))
	}
}

// ParseHealthState is the inverse of String.
func ParseHealthState(s string) (HealthState, error) {
	switch s {
	case "ok":
		return HealthOK, nil
	case "degraded":
		return HealthDegraded, nil
	case "draining":
		return HealthDraining, nil
	case "unhealthy":
		return HealthUnhealthy, nil
	default:
		return 0, fmt.Errorf("serve: unknown health state %q (want ok, degraded, draining, unhealthy)", s)
	}
}

// BackendHealth is one worker's slice of the health report.
type BackendHealth struct {
	Worker      int    `json:"worker"`
	Backend     string `json:"backend"`
	Breaker     string `json:"breaker"`
	Quarantined bool   `json:"quarantined"`
	Panics      uint64 `json:"panics"`
	Restarts    uint64 `json:"restarts"`
	// SDCDetected counts silent data corruptions attributed to this worker
	// (ABFT-repaired GEMM flips and failed re-encode audits); the quarantine
	// budget is charged from the same stream.
	SDCDetected uint64 `json:"sdc_detected"`
}

// HealthReport is the full /healthz body. Epoch and Instance identify this
// scheduler incarnation (see Scheduler.Identity); a cluster front end
// watches them to detect shard restarts.
type HealthReport struct {
	Status   string          `json:"status"`
	Epoch    int64           `json:"epoch"`
	Instance string          `json:"instance"`
	Backends []BackendHealth `json:"backends,omitempty"`
	// SDCDetected totals worker-attributed silent-corruption detections —
	// the cluster front end folds it into per-shard health.
	SDCDetected uint64 `json:"sdc_detected"`
}

// Health grades the scheduler: draining once Close has begun, unhealthy when
// every backend is quarantined, degraded when any backend is quarantined or
// behind a non-closed breaker, ok otherwise.
func (s *Scheduler) Health() (HealthState, HealthReport) {
	s.admit.RLock()
	draining := s.closed
	s.admit.RUnlock()
	backends := make([]BackendHealth, len(s.workers))
	quarantined, impaired := 0, 0
	var sdcTotal uint64
	for i, w := range s.workers {
		bs := w.breaker.State()
		q := w.quarantined.Load()
		sdc := w.sdcDetected.Load()
		backends[i] = BackendHealth{
			Worker:      w.id,
			Backend:     w.backend().Name(),
			Breaker:     bs.String(),
			Quarantined: q,
			Panics:      w.panics.Load(),
			Restarts:    w.restartCount.Load(),
			SDCDetected: sdc,
		}
		sdcTotal += sdc
		if q {
			quarantined++
		}
		if q || bs != resilience.BreakerClosed {
			impaired++
		}
	}
	state := HealthOK
	switch {
	case draining:
		state = HealthDraining
	case len(s.workers) > 0 && quarantined == len(s.workers):
		state = HealthUnhealthy
	case impaired > 0:
		state = HealthDegraded
	}
	return state, HealthReport{
		Status: state.String(), Epoch: s.epoch, Instance: s.instance,
		Backends: backends, SDCDetected: sdcTotal,
	}
}

// batchOutcome is the resilience telemetry of one dispatched batch.
type batchOutcome struct {
	// fallbackReason is non-empty when the batch was answered by the linear
	// fallback; it is the DegradedBy every frame carries.
	fallbackReason string
	retries        int
	panics         int
	wedges         int
	sdcAudits      int // attempts rejected by the re-encode integrity audit
	hedged         bool
	restarted      bool
	quarantined    bool // the batch tripped this worker into quarantine
}

// annotations renders the outcome as trace-frame markers.
func (oc batchOutcome) annotations() []string {
	var a []string
	if oc.retries > 0 {
		a = append(a, "retried")
	}
	if oc.hedged {
		a = append(a, "hedged")
	}
	if oc.fallbackReason != "" {
		a = append(a, "shed:"+oc.fallbackReason)
	}
	return a
}

// attemptResult carries one primary decode attempt across goroutines.
type attemptResult struct {
	rep *core.BatchReport
	err error
}

// auditMode selects the re-encode integrity check applied to each result of
// a batch, derived from the batch's effective decode policy (auditModeFor):
// the reported metric's meaning depends on the norm and datapath precision,
// so the audit must match or honest decodes would be rejected.
type auditMode int

const (
	// auditOff skips the re-encode audit (resilience disabled, or the
	// DisableAudit escape hatch); only the shape/finiteness garbage checks run.
	auditOff auditMode = iota
	// auditExactL2: full-precision ℓ² decodes, where the metric is defined as
	// ‖y − H·ŝ‖² of the returned point — equality within rounding tolerance.
	auditExactL2
	// auditBound: ℓ∞ decodes report the rotated-domain ‖·‖∞² partial
	// distance, which is bounded by the ℓ² residual but not equal to it.
	auditBound
	// auditBoundFP16: half-precision decodes carry binary16 rounding error,
	// so the bound check runs with the wider AuditRelTolFP16 slack.
	auditBoundFP16
)

// checkReport guards against garbage and corrupted outputs: a "successful"
// decode must cover every input with a finite, non-empty decision
// (errGarbage otherwise), and — unless the audit is off — each result's
// metric must be consistent with ‖y − H·ŝ‖² recomputed from the original
// inputs (errIntegrityAudit otherwise). Both sentinels are transient, so the
// caller retries within budget and then answers from the fallback; a
// corrupted result is never served as exact. The ŝ finiteness check matters:
// a NaN symbol vector yields a NaN residual, and every comparison against
// NaN is false, so without it corruption would sail through the audit.
func checkReport(rep *core.BatchReport, inputs []core.BatchInput, mode auditMode) error {
	if rep == nil || len(rep.Results) != len(inputs) {
		return errGarbage
	}
	var scratch cmatrix.Vector
	if mode != auditOff && len(inputs) > 0 {
		scratch = make(cmatrix.Vector, inputs[0].H.Rows)
	}
	for i, res := range rep.Results {
		if res == nil || len(res.SymbolIdx) == 0 ||
			math.IsNaN(res.Metric) || math.IsInf(res.Metric, 0) {
			return errGarbage
		}
		if mode == auditOff {
			continue
		}
		in := inputs[i]
		if len(res.Symbols) != in.H.Cols || !res.Symbols.IsFinite() {
			return errGarbage
		}
		audit := integrity.ReEncode(in.H, in.Y, res.Symbols, scratch)
		var aerr error
		switch mode {
		case auditBound:
			aerr = audit.CheckBound(res.Metric)
		case auditBoundFP16:
			aerr = audit.CheckBoundTol(res.Metric, integrity.AuditRelTolFP16)
		default:
			aerr = audit.CheckExactL2(res.Metric)
		}
		if aerr != nil {
			return fmt.Errorf("%w (frame %d): %w", errIntegrityAudit, i, aerr)
		}
	}
	return nil
}

// auditModeFor maps the batch's effective decode policy (nil = the backend's
// base policy) to the matching re-encode audit mode.
func (s *Scheduler) auditModeFor(pol *core.DecodePolicy) auditMode {
	if s.rcfg.Disable || s.rcfg.DisableAudit {
		return auditOff
	}
	p := s.basePol
	if pol != nil {
		p = *pol
	}
	switch {
	case p.FP16GEMM:
		return auditBoundFP16
	case p.Norm == sphere.NormLInf:
		return auditBound
	default:
		return auditExactL2
	}
}

// basePolicyer is the optional Backend facet exposing the decode policy the
// backend defaults to when no per-batch override is supplied
// (core.Accelerator implements it); auditModeFor needs it to audit
// default-policy batches correctly.
type basePolicyer interface {
	BasePolicy() core.DecodePolicy
}

// noteWorkerSDC attributes n detected silent corruptions to w: the worker's
// counter feeds /healthz, and each detection spends one token of the SDC
// quarantine budget — exhaustion quarantines the worker, because hardware
// that keeps flipping bits has failed even when every flip was caught.
// Reports false once the worker is quarantined. Callers must not hold s.m.mu.
func (s *Scheduler) noteWorkerSDC(w *workerCtl, n int) bool {
	if n <= 0 {
		return !w.quarantined.Load()
	}
	w.sdcDetected.Add(uint64(n))
	for range n {
		if !w.sdcBudget.AllowRestart() {
			if !w.quarantined.Swap(true) {
				s.m.mu.Lock()
				s.m.quarantines++
				s.m.mu.Unlock()
			}
			return false
		}
	}
	return !w.quarantined.Load()
}

// attempt runs one primary decode on w's backend under the recovery barrier.
// With no hedge/wedge timers armed it is a plain inline call (no goroutine —
// the disabled-path cost the benchmarks pin). With timers armed the decode
// runs on a goroutine; on timeout the backend is abandoned (marked lost, its
// eventual outcome drained into the breaker) and a sentinel error returned.
func (s *Scheduler) attempt(w *workerCtl, inputs []core.BatchInput, opts []core.BatchOption, mode auditMode) (*core.BatchReport, error) {
	rcfg := s.rcfg
	if rcfg.HedgeAfter <= 0 && rcfg.WedgeTimeout <= 0 {
		var rep *core.BatchReport
		err := resilience.Recover(func() error {
			var e error
			rep, e = w.be.DecodeBatch(inputs, opts...)
			return e
		})
		if err == nil {
			err = checkReport(rep, inputs, mode)
		}
		return rep, err
	}

	be := w.be
	ch := make(chan attemptResult, 1)
	go func() {
		var rep *core.BatchReport
		err := resilience.Recover(func() error {
			var e error
			rep, e = be.DecodeBatch(inputs, opts...)
			return e
		})
		ch <- attemptResult{rep, err}
	}()

	var hedgeC, wedgeC <-chan time.Time
	if rcfg.HedgeAfter > 0 {
		t := time.NewTimer(rcfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	if rcfg.WedgeTimeout > 0 {
		t := time.NewTimer(rcfg.WedgeTimeout)
		defer t.Stop()
		wedgeC = t.C
	}
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				r.err = checkReport(r.rep, inputs, mode)
			}
			return r.rep, r.err
		case <-hedgeC:
			hedgeC = nil // one shot; fall through to waiting if not hedging
			if !s.hedgeBudget.Spend() {
				continue
			}
			s.abandonPrimary(w, ch, inputs, mode)
			return nil, errHedged
		case <-wedgeC:
			s.abandonPrimary(w, ch, inputs, mode)
			return nil, errWedged
		}
	}
}

// abandonPrimary detaches a still-running decode from its worker: the
// backend is marked lost (replaced before next use) and a drain goroutine
// feeds the decode's eventual outcome into the breaker so an abandoned-but-
// healthy backend still earns its way back to closed.
func (s *Scheduler) abandonPrimary(w *workerCtl, ch <-chan attemptResult, inputs []core.BatchInput, mode auditMode) {
	w.mu.Lock()
	w.beLost = true
	w.mu.Unlock()
	go func() {
		r := <-ch
		if r.err == nil {
			r.err = checkReport(r.rep, inputs, mode)
		}
		if r.err == nil {
			w.breaker.Success()
			s.m.mu.Lock()
			s.m.hedgeWaste++
			s.m.mu.Unlock()
		} else {
			w.breaker.Failure()
			if errors.Is(r.err, errIntegrityAudit) {
				// The abandoned result was never served, so the corruption is
				// trivially recovered — but it still counts against the
				// worker's hardware trustworthiness.
				s.noteWorkerSDC(w, 1)
				s.m.mu.Lock()
				s.m.sdcDetected[integrity.SiteMetricAudit]++
				s.m.sdcRecovered++
				s.m.mu.Unlock()
			}
		}
	}()
}

// ensureBackend replaces a lost backend before reuse. Reports false when the
// rebuild failed and the worker had to be quarantined.
func (s *Scheduler) ensureBackend(w *workerCtl) bool {
	w.mu.Lock()
	lost := w.beLost
	w.mu.Unlock()
	if !lost {
		return true
	}
	return s.restartBackend(w)
}

// restartBackend rebuilds w's backend from the factory (re-applying the
// worker wrapper) if the restart budget allows, quarantining the worker
// otherwise. Returns false on quarantine.
func (s *Scheduler) restartBackend(w *workerCtl) bool {
	if w.quarantined.Load() {
		return false
	}
	quarantine := func() bool {
		w.quarantined.Store(true)
		s.m.mu.Lock()
		s.m.quarantines++
		s.m.mu.Unlock()
		return false
	}
	if !w.restarts.AllowRestart() {
		return quarantine()
	}
	be, err := s.factory()
	if err != nil {
		return quarantine()
	}
	if s.cfg.WrapWorker != nil {
		be = s.cfg.WrapWorker(w.id, be)
	}
	w.mu.Lock()
	w.be = be
	w.beLost = false
	w.mu.Unlock()
	w.restartCount.Add(1)
	s.m.mu.Lock()
	s.m.restarts++
	s.m.mu.Unlock()
	return true
}

// fallbackBatch answers a whole batch from the serialized linear fallback
// backend — the same shed path overload uses, so a broken accelerator costs
// quality, never availability. Every result carries QualityFallback with the
// given reason.
func (s *Scheduler) fallbackBatch(inputs []core.BatchInput, reason string) (*core.BatchReport, error) {
	rep := &core.BatchReport{Results: make([]*decoder.Result, len(inputs))}
	s.shedMu.Lock()
	defer s.shedMu.Unlock()
	for i, in := range inputs {
		res, err := s.shedBE.DecodeFallback(in)
		if err != nil {
			return nil, fmt.Errorf("serve: fallback decode: %w", err)
		}
		res.DegradedBy = reason
		rep.Results[i] = res
		rep.Counters.Add(res.Counters)
	}
	return rep, nil
}

// decodeResilient is the supervised decode path: breaker routing, panic
// recovery with restart/quarantine, budgeted retries, hedged/wedged
// abandonment — and, when everything is exhausted, the linear fallback, so
// the batch is always answered (or typed-rejected on a permanent error).
func (s *Scheduler) decodeResilient(w *workerCtl, inputs []core.BatchInput, opts []core.BatchOption, mode auditMode) (*core.BatchReport, batchOutcome, error) {
	var oc batchOutcome
	if s.rcfg.Disable {
		rep, err := w.be.DecodeBatch(inputs, opts...)
		return rep, oc, err
	}

	shed := func(reason string) (*core.BatchReport, batchOutcome, error) {
		oc.fallbackReason = reason
		rep, err := s.fallbackBatch(inputs, reason)
		return rep, oc, err
	}

	if w.quarantined.Load() {
		return shed(DegradedByQuarantine)
	}
	allowed, probe := w.breaker.Allow()
	if !allowed {
		return shed(DegradedByBreaker)
	}

	maxAttempts := 1 + s.rcfg.RetryMax
	if probe {
		// The half-open probe gets exactly one shot: its outcome decides
		// the breaker, and burning retries on a likely-broken backend
		// defeats the point of failing fast.
		maxAttempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if !s.ensureBackend(w) {
			oc.quarantined = true
			return shed(DegradedByQuarantine)
		}
		rep, err := s.attempt(w, inputs, opts, mode)
		if err == nil {
			w.breaker.Success()
			s.retryBudget.Earn(1)
			s.hedgeBudget.Earn(1)
			return rep, oc, nil
		}
		lastErr = err

		switch {
		case errors.Is(err, errHedged):
			// Not a verdict on the backend: the drain goroutine settles the
			// breaker when the primary finishes. Answer from the fallback now.
			oc.hedged = true
			return shed(DegradedByHedge)
		case errors.Is(err, errWedged):
			oc.wedges++
			w.breaker.Failure()
			if !s.restartBackend(w) {
				oc.quarantined = true
				return shed(DegradedByQuarantine)
			}
			oc.restarted = true
			// A wedge already cost WedgeTimeout; retrying risks another.
			return shed(DegradedByWedge)
		case errors.Is(err, resilience.ErrWorkerPanic):
			oc.panics++
			w.panics.Add(1)
			w.breaker.Failure()
			var pe *resilience.PanicError
			if errors.As(err, &pe) {
				s.recordPanic(w.id, pe)
			}
			if !s.restartBackend(w) {
				oc.quarantined = true
				return shed(DegradedByQuarantine)
			}
			oc.restarted = true
		case errors.Is(err, errIntegrityAudit):
			// Detected silent corruption on the result path: count it, debit
			// the worker's SDC quarantine allowance, and retry within budget —
			// a transient flip clears, failing hardware repeats until it
			// exhausts the allowance.
			oc.sdcAudits++
			w.breaker.Failure()
			if !s.noteWorkerSDC(w, 1) {
				oc.quarantined = true
				return shed(DegradedByQuarantine)
			}
		case resilience.Transient(err):
			w.breaker.Failure()
		default:
			// Permanent error: a typed rejection is the honest answer, and
			// retrying cannot change it.
			w.breaker.Failure()
			return nil, oc, err
		}

		if probe || attempt+1 >= maxAttempts {
			break
		}
		if !s.retryBudget.Spend() {
			s.m.mu.Lock()
			s.m.retryBudgetExhausted++
			s.m.mu.Unlock()
			break
		}
		oc.retries++
		time.Sleep(s.backoff.Delay(attempt))
	}

	// Primary exhausted: absorb the fault into the fallback.
	reason := DegradedByTransient
	switch {
	case errors.Is(lastErr, resilience.ErrWorkerPanic):
		reason = DegradedByPanic
	case errors.Is(lastErr, errIntegrityAudit):
		reason = DegradedByIntegrity
	}
	return shed(reason)
}

// recordPanic stores the most recent recovered panic (stack included) for
// diagnostics and counts it.
func (s *Scheduler) recordPanic(worker int, pe *resilience.PanicError) {
	s.m.mu.Lock()
	s.m.panics++
	s.m.lastPanic = fmt.Sprintf("worker %d: %v\n%s", worker, pe.Value, pe.Stack)
	s.m.mu.Unlock()
}
