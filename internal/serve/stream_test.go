package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/stream"
)

// These tests close the loop between the live scheduler and the
// discrete-event model in internal/stream: Config.SimulationConfig maps a
// serving configuration onto the model, the model predicts the overload
// behaviour, and the live scheduler is held to the prediction's direction
// (zero-loss stays zero-loss, overload loss shows up as typed
// rejections/sheds — never as unbounded queue growth or hangs).

// TestSimulationConfigMapping pins the policy translation.
func TestSimulationConfigMapping(t *testing.T) {
	base := Config{MaxBatch: 8, MaxWait: 2 * time.Millisecond, QueueCap: 32}
	period, service, linear := time.Millisecond, 4*time.Millisecond, 100*time.Microsecond

	rej := base
	rej.Policy = Reject
	sc := rej.SimulationConfig(period, service, linear)
	if sc.QueueCap != 4 { // 32 frames / 8 per batch
		t.Fatalf("reject queue cap %d, want 4", sc.QueueCap)
	}
	if sc.Policy.Mode != stream.DropOnly {
		t.Fatalf("reject maps to %v", sc.Policy.Mode)
	}
	if sc.Deadline != base.MaxWait+service {
		t.Fatalf("deadline %v", sc.Deadline)
	}

	shed := base
	shed.Policy = ShedToLinear
	sc = shed.SimulationConfig(period, service, linear)
	if sc.Policy.Mode != stream.ShedToLinear || sc.Policy.LinearTime != linear {
		t.Fatalf("shed maps to %+v", sc.Policy)
	}
	if sc.QueueCap != 0 {
		t.Fatalf("shed queue cap %d, want unbounded", sc.QueueCap)
	}

	blk := base
	blk.Policy = Block
	sc = blk.SimulationConfig(period, service, linear)
	if sc.QueueCap != 0 || sc.Policy.Mode != stream.DropOnly {
		t.Fatalf("block maps to %+v", sc)
	}
}

// TestUnderloadMatchesPrediction: when the model predicts a loss-free
// stream, the live scheduler at the same (generous) load must lose nothing
// and keep every frame exact.
func TestUnderloadMatchesPrediction(t *testing.T) {
	cfg := Config{MaxBatch: 4, MaxWait: time.Millisecond, Workers: 2, QueueCap: 16, Policy: Reject}

	// Model: batches every 10ms, 1ms of service each — far under capacity.
	service := make([]time.Duration, 20)
	for i := range service {
		service[i] = time.Millisecond
	}
	pred, err := stream.Simulate(cfg.SimulationConfig(10*time.Millisecond, time.Millisecond, 100*time.Microsecond), service)
	if err != nil {
		t.Fatal(err)
	}
	if pred.MissRate() != 0 || pred.Dropped != 0 {
		t.Fatalf("model predicts loss under 10%% utilization: %+v", pred)
	}

	// Live: the same shape — sequential submits with idle gaps dwarfing the
	// µs-scale decode time.
	s := newScheduler(t, cfg)
	inputs := genInputs(t, 20, 83)
	for i, in := range inputs {
		if _, err := s.Submit(context.Background(), in); err != nil {
			t.Fatalf("Submit %d: %v (model predicted zero loss)", i, err)
		}
	}
	st := s.Stats()
	if st.Rejected != 0 || st.Shed != 0 || st.Failed != 0 {
		t.Fatalf("live run lost work the model said it would not: %+v", st)
	}
	if st.QualityCounts["exact"] != 20 {
		t.Fatalf("live quality %v", st.QualityCounts)
	}
}

// TestOverloadMatchesPrediction: when the model predicts drops for an
// offered load, the live scheduler under the equivalent burst must reject
// (Reject) or shed (ShedToLinear) — and serve the rest.
func TestOverloadMatchesPrediction(t *testing.T) {
	const burst = 16
	workerDelay := 20 * time.Millisecond
	cfg := Config{MaxBatch: 1, MaxWait: time.Millisecond, Workers: 1, QueueCap: 2, Policy: Reject}

	// Model: a burst arriving much faster than the engine drains.
	service := make([]time.Duration, burst)
	for i := range service {
		service[i] = workerDelay
	}
	pred, err := stream.Simulate(cfg.SimulationConfig(time.Millisecond, workerDelay, time.Millisecond), service)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Dropped == 0 {
		t.Fatalf("model predicts no drops for a %d-burst at 20x capacity: %+v", burst, pred)
	}

	run := func(policy OverloadPolicy) Stats {
		c := cfg
		c.Policy = policy
		s, err := New(c, newSlowFactory(t, workerDelay))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		inputs := genInputs(t, burst, 89)
		var wg sync.WaitGroup
		for i := range inputs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, err := s.Submit(context.Background(), inputs[i])
				if err != nil && !errors.Is(err, ErrOverloaded) {
					t.Errorf("submit %d: %v", i, err)
				}
			}(i)
		}
		wg.Wait()
		return s.Stats()
	}

	rej := run(Reject)
	if rej.Rejected == 0 {
		t.Fatalf("model predicted %d drops, live Reject run rejected nothing: %+v", pred.Dropped, rej)
	}
	if rej.Completed == 0 {
		t.Fatalf("live Reject run served nothing: %+v", rej)
	}

	// Shed variant of the same overload: the model predicts fallback-quality
	// completions instead of drops; the live run must shed, not reject.
	shedCfg := cfg
	shedCfg.Policy = ShedToLinear
	shedPred, err := stream.Simulate(shedCfg.SimulationConfig(time.Millisecond, workerDelay, time.Millisecond), service)
	if err != nil {
		t.Fatal(err)
	}
	if shedPred.Quality[stream.QualityFallback] == 0 || shedPred.Dropped != 0 {
		t.Fatalf("shed model prediction: %+v", shedPred)
	}
	shed := run(ShedToLinear)
	if shed.Shed == 0 {
		t.Fatalf("model predicted %d fallback batches, live shed run shed nothing: %+v",
			shedPred.Quality[stream.QualityFallback], shed)
	}
	if shed.Rejected != 0 {
		t.Fatalf("shed run rejected: %+v", shed)
	}
	if shed.QualityCounts["fallback"] == 0 {
		t.Fatalf("shed run quality: %v", shed.QualityCounts)
	}
	// Every frame of the burst produced a decision under shed.
	if shed.Completed+shed.Shed != burst {
		t.Fatalf("shed run lost frames: %+v", shed)
	}
}
