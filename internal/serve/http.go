package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cmatrix"
	"repro/internal/core"
)

// APIVersion is the wire version echoed by every /v1 response body.
const APIVersion = "v1"

// Wire format: complex numbers travel as [re, im] pairs so clients need no
// custom marshalling.

// DecodeRequest is the JSON body of POST /v1/decode. Two forms are accepted:
// a single frame (h, y, noise_var) or a batch envelope (frames: [...]), never
// both in one body. Unknown fields are rejected with a typed 400.
type DecodeRequest struct {
	// H is the Rx×Tx channel estimate, row-major, entries as [re, im].
	H [][][2]float64 `json:"h,omitempty"`
	// Y is the received vector, entries as [re, im].
	Y [][2]float64 `json:"y,omitempty"`
	// NoiseVar is the complex noise variance σ².
	NoiseVar float64 `json:"noise_var,omitempty"`
	// Frames is the batch form: each entry is a single-frame request. The
	// frames are submitted concurrently so the scheduler can coalesce them
	// into one dispatch. Entries may not themselves carry frames.
	Frames []DecodeRequest `json:"frames,omitempty"`
	// Scenario is an optional workload label: frames carrying it accumulate
	// into the per-scenario quality and QR-cache splits on /metrics. On a
	// batch envelope it applies to every frame that does not set its own.
	Scenario string `json:"scenario,omitempty"`
}

// DecodeResponse is the JSON body answering a single-frame POST /v1/decode.
type DecodeResponse struct {
	APIVersion    string  `json:"api_version"`
	SymbolIndices []int   `json:"symbol_indices"`
	Bits          []int   `json:"bits"`
	Metric        float64 `json:"metric"`
	NodesExplored int64   `json:"nodes_explored"`
	Quality       string  `json:"quality"`
	DegradedBy    string  `json:"degraded_by,omitempty"`
	BatchSize     int     `json:"batch_size"`
	QueueWaitNS   int64   `json:"queue_wait_ns"`
	ServiceNS     int64   `json:"service_ns"`
	SimulatedNS   int64   `json:"simulated_ns"`
	Shed          bool    `json:"shed,omitempty"`
}

// BatchDecodeResult is one frame's outcome inside a BatchDecodeResponse:
// either a DecodeResponse or an error, never both.
type BatchDecodeResult struct {
	*DecodeResponse
	Error string `json:"error,omitempty"`
}

// BatchDecodeResponse answers the batch form of POST /v1/decode. The HTTP
// status is 200 whenever the envelope itself was well-formed; per-frame
// failures ride in Results[i].Error.
type BatchDecodeResponse struct {
	APIVersion string              `json:"api_version"`
	Results    []BatchDecodeResult `json:"results"`
}

// ConfigInfo is the JSON body of GET /v1/config: what a client needs to
// build well-formed requests (and what a load generator needs to match the
// server's MIMO configuration).
type ConfigInfo struct {
	APIVersion string `json:"api_version"`
	Backend    string `json:"backend"`
	// Epoch/Instance identify the scheduler incarnation (see
	// Scheduler.Identity): a restart yields a larger epoch and a fresh
	// instance, telling clients any affinity assumptions are stale.
	Epoch      int64  `json:"epoch"`
	Instance   string `json:"instance"`
	TxAntennas int    `json:"tx_antennas"`
	RxAntennas int    `json:"rx_antennas"`
	Modulation string `json:"modulation"`
	MaxBatch   int    `json:"max_batch"`
	MaxWaitNS  int64  `json:"max_wait_ns"`
	Workers    int    `json:"workers"`
	QueueCap   int    `json:"queue_cap"`
	Policy     string `json:"policy"`
	BudgetNS   int64  `json:"budget_deadline_ns"`
	NodeBudget int64  `json:"node_budget"`
	// Strategy/Norm name the decode engine the backends were built with
	// (e.g. "SD-RVD-SE" / "linf"); empty when the server predates the
	// strategy plumbing or runs the default engine unannotated.
	Strategy string `json:"strategy,omitempty"`
	Norm     string `json:"norm,omitempty"`
	// DecodePolicy/PolicyMode echo the live decode-policy state (see
	// GET /v1/policy): the effective policy spelling and which authority is
	// choosing it ("default", "fixed", "adaptive", "override").
	DecodePolicy string `json:"decode_policy"`
	PolicyMode   string `json:"policy_mode"`
}

// Machine-readable error codes carried by errorBody.Code.
const (
	CodeBadRequest   = "bad_request"   // malformed body, unknown field, bad envelope
	CodeInvalidInput = "invalid_input" // well-formed but undecodable (shape, NaN, σ²≤0)
	CodeOverloaded   = "overloaded"    // admission queue full under Reject
	CodeUnavailable  = "unavailable"   // scheduler draining/closed
	CodeTimeout      = "timeout"       // client context expired
	CodeInternal     = "internal"
)

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// handler serves the scheduler over HTTP.
type handler struct {
	s        *Scheduler
	tx       int
	rx       int
	mod      string
	strategy string
	norm     string
	mux      *http.ServeMux
}

// HandlerOption customises the HTTP front end without widening the
// NewHandler signature for every caller.
type HandlerOption func(*handler)

// WithDecodeInfo annotates /v1/config with the tree-search strategy and
// partial-distance norm the backends were built with, so load generators
// can verify they are measuring the engine they think they are.
func WithDecodeInfo(strategy, norm string) HandlerOption {
	return func(h *handler) { h.strategy, h.norm = strategy, norm }
}

// NewHandler wraps a scheduler in the HTTP/JSON front end. tx, rx, mod
// describe the MIMO configuration the backends were built for and are
// echoed by /v1/config.
func NewHandler(s *Scheduler, tx, rx int, mod string, opts ...HandlerOption) http.Handler {
	h := &handler{s: s, tx: tx, rx: rx, mod: mod, mux: http.NewServeMux()}
	for _, opt := range opts {
		opt(h)
	}
	h.mux.HandleFunc("POST /v1/decode", h.decode)
	h.mux.HandleFunc("GET /v1/config", h.config)
	h.mux.HandleFunc("GET /v1/policy", h.policyGet)
	h.mux.HandleFunc("PUT /v1/policy", h.policyPut)
	h.mux.HandleFunc("GET /v1/trace", h.trace)
	h.mux.HandleFunc("GET /metrics", h.metrics)
	h.mux.HandleFunc("GET /healthz", h.healthz)
	return h
}

func (h *handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorBody{Error: err.Error(), Code: code})
}

// submitStatus maps a Submit error to (HTTP status, wire code).
func submitStatus(r *http.Request, err error) (int, string) {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests, CodeOverloaded
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable, CodeUnavailable
	case errors.Is(err, core.ErrInvalidInput):
		return http.StatusBadRequest, CodeInvalidInput
	case r.Context().Err() != nil:
		return http.StatusGatewayTimeout, CodeTimeout
	default:
		return http.StatusInternalServerError, CodeInternal
	}
}

// ToBatchInput converts the wire request into the decoder's input form. It
// is exported for the cluster proxy, which needs the parsed channel matrix
// to fingerprint-route a frame before forwarding it.
func (r *DecodeRequest) ToBatchInput() (core.BatchInput, error) {
	rows := len(r.H)
	if rows == 0 {
		return core.BatchInput{}, errors.New("empty channel matrix")
	}
	cols := len(r.H[0])
	hm := cmatrix.NewMatrix(rows, cols)
	for i, row := range r.H {
		if len(row) != cols {
			return core.BatchInput{}, fmt.Errorf("ragged channel matrix: row %d has %d entries, row 0 has %d", i, len(row), cols)
		}
		dst := hm.Row(i)
		for j, e := range row {
			dst[j] = complex(e[0], e[1])
		}
	}
	y := make(cmatrix.Vector, len(r.Y))
	for i, e := range r.Y {
		y[i] = complex(e[0], e[1])
	}
	return core.BatchInput{H: hm, Y: y, NoiseVar: r.NoiseVar}, nil
}

// responseFrom shapes one scheduler Response for the wire.
func (h *handler) responseFrom(resp *Response) *DecodeResponse {
	cons := h.s.Backend().Constellation()
	buf := make([]int, cons.BitsPerSymbol())
	bits := make([]int, 0, len(resp.Result.SymbolIdx)*cons.BitsPerSymbol())
	for _, idx := range resp.Result.SymbolIdx {
		bits = append(bits, cons.BitsOf(idx, buf)...)
	}
	return &DecodeResponse{
		APIVersion:    APIVersion,
		SymbolIndices: resp.Result.SymbolIdx,
		Bits:          bits,
		Metric:        resp.Result.Metric,
		NodesExplored: resp.Result.Counters.NodesExpanded,
		Quality:       resp.Result.Quality.String(),
		DegradedBy:    resp.Result.DegradedBy,
		BatchSize:     resp.BatchSize,
		QueueWaitNS:   int64(resp.QueueWait),
		ServiceNS:     int64(resp.Service),
		SimulatedNS:   int64(resp.SimulatedTime),
		Shed:          resp.Shed,
	}
}

func (h *handler) decode(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req DecodeRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("malformed request body: %w", err))
		return
	}
	if len(req.Frames) > 0 {
		if len(req.H) > 0 || len(req.Y) > 0 || req.NoiseVar != 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				errors.New("request mixes single-frame fields (h/y/noise_var) with the batch form (frames)"))
			return
		}
		h.decodeBatch(w, r, req.Frames, req.Scenario)
		return
	}
	in, err := req.ToBatchInput()
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	resp, err := h.s.SubmitScenario(r.Context(), in, req.Scenario)
	if err != nil {
		status, code := submitStatus(r, err)
		writeError(w, status, code, err)
		return
	}
	writeJSON(w, http.StatusOK, h.responseFrom(resp))
}

// decodeBatch serves the frames form: every frame is submitted concurrently
// so the scheduler's batcher can coalesce them into shared dispatches.
// scenario is the envelope-level label; frames may override it.
func (h *handler) decodeBatch(w http.ResponseWriter, r *http.Request, frames []DecodeRequest, scenario string) {
	results := make([]BatchDecodeResult, len(frames))
	var wg sync.WaitGroup
	for i := range frames {
		if len(frames[i].Frames) > 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("frames[%d] nests a frames array", i))
			return
		}
		in, err := frames[i].ToBatchInput()
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("frames[%d]: %w", i, err))
			return
		}
		label := frames[i].Scenario
		if label == "" {
			label = scenario
		}
		wg.Add(1)
		go func(i int, in core.BatchInput, label string) {
			defer wg.Done()
			resp, err := h.s.SubmitScenario(r.Context(), in, label)
			if err != nil {
				results[i] = BatchDecodeResult{Error: err.Error()}
				return
			}
			results[i] = BatchDecodeResult{DecodeResponse: h.responseFrom(resp)}
		}(i, in, label)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, BatchDecodeResponse{APIVersion: APIVersion, Results: results})
}

// trace streams JSON-lines search traces (GET /v1/trace?frames=N). The
// subscription itself is what arms tracing: batches dispatched while at
// least one subscriber is connected record spans and publish frames.
func (h *handler) trace(w http.ResponseWriter, r *http.Request) {
	n := 16
	if q := r.URL.Query().Get("frames"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("frames must be a positive integer, got %q", q))
			return
		}
		n = v
	}
	buf := n
	if buf > 1024 {
		buf = 1024
	}
	ch := h.s.Traces().Subscribe(buf)
	defer h.s.Traces().Unsubscribe(ch)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush() // commit headers so clients see the stream open
	}
	for sent := 0; sent < n; {
		select {
		case f, ok := <-ch:
			if !ok {
				return
			}
			line, err := f.MarshalLine()
			if err != nil {
				continue
			}
			if _, err := w.Write(append(line, '\n')); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			sent++
		case <-r.Context().Done():
			return
		case <-h.s.stop:
			return
		}
	}
}

func (h *handler) config(w http.ResponseWriter, _ *http.Request) {
	cfg := h.s.Config()
	epoch, instance := h.s.Identity()
	writeJSON(w, http.StatusOK, ConfigInfo{
		APIVersion:   APIVersion,
		Backend:      h.s.Backend().Name(),
		Epoch:        epoch,
		Instance:     instance,
		TxAntennas:   h.tx,
		RxAntennas:   h.rx,
		Modulation:   h.mod,
		MaxBatch:     cfg.MaxBatch,
		MaxWaitNS:    int64(cfg.MaxWait),
		Workers:      cfg.Workers,
		QueueCap:     cfg.QueueCap,
		Policy:       cfg.Policy.String(),
		BudgetNS:     int64(cfg.Budget.Deadline),
		NodeBudget:   cfg.Budget.NodeBudget,
		Strategy:     h.strategy,
		Norm:         h.norm,
		DecodePolicy: h.s.PolicyInfo().Policy,
		PolicyMode:   h.s.PolicyMode(),
	})
}

// PolicyUpdate is the JSON body of PUT /v1/policy: a core.ParsePolicy
// spelling to pin, or "adaptive" to resume the configured controller.
type PolicyUpdate struct {
	Policy string `json:"policy"`
}

// policyGet serves the live decode-policy state: deciding authority, pinned
// spelling, adaptive ladder, per-class controller EWMAs, decision counts.
func (h *handler) policyGet(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, h.s.PolicyInfo())
}

// policyPut applies a runtime policy change and answers with the resulting
// state, so a caller can confirm the override took effect in one round trip.
func (h *handler) policyPut(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var upd PolicyUpdate
	if err := dec.Decode(&upd); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("malformed request body: %w", err))
		return
	}
	if err := h.s.SetPolicy(upd.Policy); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidInput, err)
		return
	}
	writeJSON(w, http.StatusOK, h.s.PolicyInfo())
}

// metrics serves the stats snapshot: JSON by default (what sdload and the
// smoke scripts parse), Prometheus text exposition when the client asks via
// ?format=prometheus or an Accept header preferring text/plain.
func (h *handler) metrics(w http.ResponseWriter, r *http.Request) {
	st := h.s.Stats()
	format := r.URL.Query().Get("format")
	accept := r.Header.Get("Accept")
	if format == "prometheus" || (format == "" && strings.Contains(accept, "text/plain")) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		WritePrometheus(w, st)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// healthz serves the graded health report. ok and degraded answer 200 (the
// service is still doing useful work, possibly at reduced quality); draining
// and unhealthy answer 503 so load balancers route away.
func (h *handler) healthz(w http.ResponseWriter, _ *http.Request) {
	state, report := h.s.Health()
	code := http.StatusOK
	if state == HealthDraining || state == HealthUnhealthy {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, report)
}
