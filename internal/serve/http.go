package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/cmatrix"
	"repro/internal/core"
)

// Wire format: complex numbers travel as [re, im] pairs so clients need no
// custom marshalling.

// DecodeRequest is the JSON body of POST /v1/decode.
type DecodeRequest struct {
	// H is the Rx×Tx channel estimate, row-major, entries as [re, im].
	H [][][2]float64 `json:"h"`
	// Y is the received vector, entries as [re, im].
	Y [][2]float64 `json:"y"`
	// NoiseVar is the complex noise variance σ².
	NoiseVar float64 `json:"noise_var"`
}

// DecodeResponse is the JSON body answering POST /v1/decode.
type DecodeResponse struct {
	SymbolIndices []int   `json:"symbol_indices"`
	Bits          []int   `json:"bits"`
	Metric        float64 `json:"metric"`
	NodesExplored int64   `json:"nodes_explored"`
	Quality       string  `json:"quality"`
	DegradedBy    string  `json:"degraded_by,omitempty"`
	BatchSize     int     `json:"batch_size"`
	QueueWaitNS   int64   `json:"queue_wait_ns"`
	ServiceNS     int64   `json:"service_ns"`
	SimulatedNS   int64   `json:"simulated_ns"`
	Shed          bool    `json:"shed,omitempty"`
}

// ConfigInfo is the JSON body of GET /v1/config: what a client needs to
// build well-formed requests (and what a load generator needs to match the
// server's MIMO configuration).
type ConfigInfo struct {
	Backend    string `json:"backend"`
	TxAntennas int    `json:"tx_antennas"`
	RxAntennas int    `json:"rx_antennas"`
	Modulation string `json:"modulation"`
	MaxBatch   int    `json:"max_batch"`
	MaxWaitNS  int64  `json:"max_wait_ns"`
	Workers    int    `json:"workers"`
	QueueCap   int    `json:"queue_cap"`
	Policy     string `json:"policy"`
	BudgetNS   int64  `json:"budget_deadline_ns"`
	NodeBudget int64  `json:"node_budget"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// handler serves the scheduler over HTTP.
type handler struct {
	s   *Scheduler
	tx  int
	rx  int
	mod string
	mux *http.ServeMux
}

// NewHandler wraps a scheduler in the HTTP/JSON front end. tx, rx, mod
// describe the MIMO configuration the backends were built for and are
// echoed by /v1/config.
func NewHandler(s *Scheduler, tx, rx int, mod string) http.Handler {
	h := &handler{s: s, tx: tx, rx: rx, mod: mod, mux: http.NewServeMux()}
	h.mux.HandleFunc("POST /v1/decode", h.decode)
	h.mux.HandleFunc("GET /v1/config", h.config)
	h.mux.HandleFunc("GET /metrics", h.metrics)
	h.mux.HandleFunc("GET /healthz", h.healthz)
	return h
}

func (h *handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// toBatchInput converts the wire request into the decoder's input form.
func (r *DecodeRequest) toBatchInput() (core.BatchInput, error) {
	rows := len(r.H)
	if rows == 0 {
		return core.BatchInput{}, errors.New("empty channel matrix")
	}
	cols := len(r.H[0])
	hm := cmatrix.NewMatrix(rows, cols)
	for i, row := range r.H {
		if len(row) != cols {
			return core.BatchInput{}, fmt.Errorf("ragged channel matrix: row %d has %d entries, row 0 has %d", i, len(row), cols)
		}
		dst := hm.Row(i)
		for j, e := range row {
			dst[j] = complex(e[0], e[1])
		}
	}
	y := make(cmatrix.Vector, len(r.Y))
	for i, e := range r.Y {
		y[i] = complex(e[0], e[1])
	}
	return core.BatchInput{H: hm, Y: y, NoiseVar: r.NoiseVar}, nil
}

func (h *handler) decode(w http.ResponseWriter, r *http.Request) {
	var req DecodeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed request body: %w", err))
		return
	}
	in, err := req.toBatchInput()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := h.s.Submit(r.Context(), in)
	if err != nil {
		switch {
		case errors.Is(err, ErrOverloaded):
			writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrClosed):
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, core.ErrInvalidInput):
			writeError(w, http.StatusBadRequest, err)
		case r.Context().Err() != nil:
			writeError(w, http.StatusGatewayTimeout, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	cons := h.s.Backend().Constellation()
	buf := make([]int, cons.BitsPerSymbol())
	bits := make([]int, 0, len(resp.Result.SymbolIdx)*cons.BitsPerSymbol())
	for _, idx := range resp.Result.SymbolIdx {
		bits = append(bits, cons.BitsOf(idx, buf)...)
	}
	writeJSON(w, http.StatusOK, DecodeResponse{
		SymbolIndices: resp.Result.SymbolIdx,
		Bits:          bits,
		Metric:        resp.Result.Metric,
		NodesExplored: resp.Result.Counters.NodesExpanded,
		Quality:       resp.Result.Quality.String(),
		DegradedBy:    resp.Result.DegradedBy,
		BatchSize:     resp.BatchSize,
		QueueWaitNS:   int64(resp.QueueWait),
		ServiceNS:     int64(resp.Service),
		SimulatedNS:   int64(resp.SimulatedTime),
		Shed:          resp.Shed,
	})
}

func (h *handler) config(w http.ResponseWriter, _ *http.Request) {
	cfg := h.s.Config()
	writeJSON(w, http.StatusOK, ConfigInfo{
		Backend:    h.s.Backend().Name(),
		TxAntennas: h.tx,
		RxAntennas: h.rx,
		Modulation: h.mod,
		MaxBatch:   cfg.MaxBatch,
		MaxWaitNS:  int64(cfg.MaxWait),
		Workers:    cfg.Workers,
		QueueCap:   cfg.QueueCap,
		Policy:     cfg.Policy.String(),
		BudgetNS:   int64(cfg.Budget.Deadline),
		NodeBudget: cfg.Budget.NodeBudget,
	})
}

func (h *handler) metrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, h.s.Stats())
}

func (h *handler) healthz(w http.ResponseWriter, _ *http.Request) {
	if h.s.Healthy() {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
}
