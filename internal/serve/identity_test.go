package serve

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// TestSchedulerIdentity: each scheduler incarnation gets a monotonic epoch
// and a unique instance ID, and both ride the /v1/config and /healthz wire
// bodies — that is what lets a cluster proxy detect a shard restart (and
// know its QR cache went cold) without any side channel.
func TestSchedulerIdentity(t *testing.T) {
	a := newScheduler(t, Config{MaxBatch: 1, Workers: 1})
	b := newScheduler(t, Config{MaxBatch: 1, Workers: 1})
	aEpoch, aInst := a.Identity()
	bEpoch, bInst := b.Identity()
	if aEpoch <= 0 || bEpoch <= 0 {
		t.Fatalf("non-positive epochs: %d, %d", aEpoch, bEpoch)
	}
	if bEpoch < aEpoch {
		t.Fatalf("later scheduler has smaller epoch: %d then %d", aEpoch, bEpoch)
	}
	if aInst == "" || aInst == bInst {
		t.Fatalf("instance IDs not unique: %q vs %q", aInst, bInst)
	}

	srv := httptest.NewServer(NewHandler(a, 4, 4, "qpsk"))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/v1/config")
	if err != nil {
		t.Fatalf("GET /v1/config: %v", err)
	}
	var ci ConfigInfo
	if err := json.NewDecoder(resp.Body).Decode(&ci); err != nil {
		t.Fatalf("decode config: %v", err)
	}
	resp.Body.Close()
	if ci.Epoch != aEpoch || ci.Instance != aInst {
		t.Fatalf("config identity (%d, %q), want (%d, %q)", ci.Epoch, ci.Instance, aEpoch, aInst)
	}

	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	var hr HealthReport
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatalf("decode health: %v", err)
	}
	resp.Body.Close()
	if hr.Epoch != aEpoch || hr.Instance != aInst {
		t.Fatalf("healthz identity (%d, %q), want (%d, %q)", hr.Epoch, hr.Instance, aEpoch, aInst)
	}
}
