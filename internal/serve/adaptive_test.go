package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/decoder"
	"repro/internal/sphere"
)

func mustNewRequest(t *testing.T, method, url string, body []byte) *http.Request {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	return req
}

func submitAll(t *testing.T, s *Scheduler, n int, seed uint64) []*Response {
	t.Helper()
	out := make([]*Response, n)
	for i, in := range genInputs(t, n, seed) {
		resp, err := s.Submit(context.Background(), in)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		out[i] = resp
	}
	return out
}

func TestFixedDecodePolicy(t *testing.T) {
	p := core.DecodePolicy{RadiusScale: 2}
	s := newScheduler(t, Config{DecodePolicy: &p})
	if got := s.PolicyMode(); got != PolicyModeFixed {
		t.Fatalf("mode %q", got)
	}
	submitAll(t, s, 8, 1)
	st := s.Stats()
	if st.PolicyDecisions[PolicyModeFixed] == 0 {
		t.Fatalf("no fixed policy decisions recorded: %+v", st.PolicyDecisions)
	}
	if st.QualityCounts["exact"] != 8 {
		t.Fatalf("quality %+v", st.QualityCounts)
	}
}

func TestNewRejectsUnservableFixedPolicy(t *testing.T) {
	p := core.DecodePolicy{Norm: sphere.NormLInf} // linf without rvd-se
	if _, err := New(Config{DecodePolicy: &p}, newFactory(t)); err == nil {
		t.Fatal("unservable fixed policy accepted")
	}
}

func TestAdaptivePolicyDecidesAndObserves(t *testing.T) {
	ctrl := adapt.MustNewController(adapt.Config{Levels: adapt.DefaultLevels(true, 4096)})
	s := newScheduler(t, Config{Controller: ctrl})
	if got := s.PolicyMode(); got != PolicyModeAdaptive {
		t.Fatalf("mode %q", got)
	}
	submitAll(t, s, 8, 2)
	st := s.Stats()
	adaptive := uint64(0)
	for src, n := range st.PolicyDecisions {
		if strings.HasPrefix(src, PolicyModeAdaptive+":") {
			adaptive += n
		}
	}
	if adaptive == 0 {
		t.Fatalf("no adaptive decisions: %+v", st.PolicyDecisions)
	}
	// The feedback loop must have populated the controller's default class.
	snaps := ctrl.Snapshot()
	if len(snaps) != 1 || snaps[0].Class != "default" {
		t.Fatalf("controller classes %+v", snaps)
	}
	if snaps[0].Quality["exact"] != 8 {
		t.Fatalf("controller quality histogram %+v", snaps[0].Quality)
	}
	if snaps[0].EWMANodes <= 0 {
		t.Fatal("node EWMA never fed")
	}
}

func TestSetPolicyOverrideAndResume(t *testing.T) {
	ctrl := adapt.MustNewController(adapt.Config{Levels: adapt.DefaultLevels(true, 4096)})
	s := newScheduler(t, Config{Controller: ctrl})

	if err := s.SetPolicy("linear"); err != nil {
		t.Fatalf("SetPolicy(linear): %v", err)
	}
	if got := s.PolicyMode(); got != PolicyModeOverride {
		t.Fatalf("mode %q after pin", got)
	}
	for _, resp := range submitAll(t, s, 4, 3) {
		if resp.Result.Quality != decoder.QualityFallback {
			t.Fatalf("pinned linear served quality %v", resp.Result.Quality)
		}
		if resp.Result.DegradedBy != decoder.DegradedByPolicy {
			t.Fatalf("pinned linear degraded-by %q", resp.Result.DegradedBy)
		}
	}

	if err := s.SetPolicy("adaptive"); err != nil {
		t.Fatalf("SetPolicy(adaptive): %v", err)
	}
	if got := s.PolicyMode(); got != PolicyModeAdaptive {
		t.Fatalf("mode %q after resume", got)
	}
	for _, resp := range submitAll(t, s, 4, 4) {
		if resp.Result.Quality != decoder.QualityExact {
			t.Fatalf("resumed adaptive served quality %v", resp.Result.Quality)
		}
	}
}

func TestSetPolicyRejectsBadSpecs(t *testing.T) {
	s := newScheduler(t, Config{}) // no controller
	if err := s.SetPolicy("adaptive"); err == nil {
		t.Fatal("adaptive accepted without a controller")
	}
	if err := s.SetPolicy("strategy=warp"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if err := s.SetPolicy("norm=linf"); err == nil {
		t.Fatal("invalid combination accepted")
	}
}

func TestPolicyHTTPRoundTrip(t *testing.T) {
	ctrl := adapt.MustNewController(adapt.Config{Levels: adapt.DefaultLevels(true, 4096)})
	s := newScheduler(t, Config{Controller: ctrl})
	h := NewHandler(s, testMIMO.Tx, testMIMO.Rx, "qam4")
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) map[string]any {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body
	}

	if body := get("/v1/policy"); body["mode"] != "adaptive" {
		t.Fatalf("GET /v1/policy mode %v", body["mode"])
	} else if levels, ok := body["levels"].([]any); !ok || len(levels) == 0 {
		t.Fatalf("GET /v1/policy carries no ladder: %v", body["levels"])
	}
	if body := get("/v1/config"); body["policy_mode"] != "adaptive" || body["decode_policy"] != "adaptive" {
		t.Fatalf("config echo %v / %v", body["policy_mode"], body["decode_policy"])
	}

	// PUT a pin, confirm the echo flips everywhere.
	req, _ := json.Marshal(PolicyUpdate{Policy: "radius-scale=2,fp16"})
	hreq, err := srv.Client().Do(mustNewRequest(t, "PUT", srv.URL+"/v1/policy", req))
	if err != nil {
		t.Fatal(err)
	}
	defer hreq.Body.Close()
	if hreq.StatusCode != 200 {
		t.Fatalf("PUT /v1/policy: %d", hreq.StatusCode)
	}
	var after PolicyInfo
	if err := json.NewDecoder(hreq.Body).Decode(&after); err != nil {
		t.Fatal(err)
	}
	if after.Mode != PolicyModeOverride || after.Policy != "radius-scale=2,fp16" {
		t.Fatalf("PUT echo %+v", after)
	}
	if body := get("/v1/config"); body["policy_mode"] != "override" || body["decode_policy"] != "radius-scale=2,fp16" {
		t.Fatalf("config echo after PUT: %v / %v", body["policy_mode"], body["decode_policy"])
	}

	// A bad spelling is a 400 and changes nothing.
	bad, _ := json.Marshal(PolicyUpdate{Policy: "norm=linf"})
	resp, err := srv.Client().Do(mustNewRequest(t, "PUT", srv.URL+"/v1/policy", bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad PUT status %d", resp.StatusCode)
	}
	if body := get("/v1/policy"); body["policy"] != "radius-scale=2,fp16" {
		t.Fatalf("bad PUT mutated state: %v", body["policy"])
	}
}
