package serve

import (
	"fmt"
	"math"
	"time"

	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/decoder"
	"repro/internal/faultinject"
	"repro/internal/resilience"
)

// FaultyBackend wraps a Backend with a faultinject.ServePlan, injecting
// accelerator-level faults into DecodeBatch only: panics, stalls, garbage
// reports, transient errors, and wedges. Validation and the linear fallback
// pass through untouched — chaos targets the primary decode path, the
// resilience layer's job is to keep the fallback answering. Install it via
// Config.WrapWorker so supervised restarts rebuild the wrapper too.
type FaultyBackend struct {
	inner Backend
	plan  *faultinject.ServePlan
}

// NewFaultyBackend wraps inner with the chaos plan.
func NewFaultyBackend(inner Backend, plan *faultinject.ServePlan) *FaultyBackend {
	return &FaultyBackend{inner: inner, plan: plan}
}

// Name marks the wrapped backend so health reports show the chaos wiring.
func (f *FaultyBackend) Name() string { return f.inner.Name() + "+faulty" }

// Constellation passes through.
func (f *FaultyBackend) Constellation() *constellation.Constellation { return f.inner.Constellation() }

// ValidateInput passes through: admission must stay honest under chaos.
func (f *FaultyBackend) ValidateInput(in core.BatchInput) error { return f.inner.ValidateInput(in) }

// DecodeFallback passes through clean — the shed path is the safety net the
// chaos scenarios verify, so it is never the fault site.
func (f *FaultyBackend) DecodeFallback(in core.BatchInput) (*decoder.Result, error) {
	return f.inner.DecodeFallback(in)
}

// PreprocessCacheStats passes through so the QR cache ledger survives chaos
// wrapping (zeros when the inner backend does not report).
func (f *FaultyBackend) PreprocessCacheStats() (hits, misses int64) {
	if cs, ok := f.inner.(cacheStatser); ok {
		return cs.PreprocessCacheStats()
	}
	return 0, 0
}

// PreprocessCacheSDCEvictions passes through for the same reason.
func (f *FaultyBackend) PreprocessCacheSDCEvictions() int64 {
	if ss, ok := f.inner.(sdcStatser); ok {
		return ss.PreprocessCacheSDCEvictions()
	}
	return 0
}

// DecodeBatch rolls the plan once per call and injects the drawn fault.
func (f *FaultyBackend) DecodeBatch(inputs []core.BatchInput, opts ...core.BatchOption) (*core.BatchReport, error) {
	switch f.plan.Next() {
	case faultinject.ServePanic:
		panic("chaos: injected backend panic")
	case faultinject.ServeStall:
		time.Sleep(f.plan.Config.StallFor)
	case faultinject.ServeGarbage:
		// A "successful" report with nothing usable in it: NaN metric, no
		// decisions. checkReport must refuse it.
		rep := &core.BatchReport{Results: make([]*decoder.Result, len(inputs))}
		for i := range rep.Results {
			rep.Results[i] = &decoder.Result{Metric: math.NaN()}
		}
		return rep, nil
	case faultinject.ServeError:
		return nil, fmt.Errorf("chaos: injected transfer glitch: %w", resilience.ErrTransient)
	case faultinject.ServeWedge:
		time.Sleep(f.plan.Config.WedgeFor)
	}
	return f.inner.DecodeBatch(inputs, opts...)
}
