package serve

import (
	"fmt"
	"math"

	"repro/internal/adapt"
	"repro/internal/core"
)

// Decode-policy modes reported by PolicyInfo.Mode: which authority picks the
// DecodePolicy of each dispatched batch.
const (
	// PolicyModeDefault: no policy is applied; batches decode with the
	// backend's base configuration.
	PolicyModeDefault = "default"
	// PolicyModeFixed: Config.DecodePolicy is applied to every batch.
	PolicyModeFixed = "fixed"
	// PolicyModeAdaptive: the adapt.Controller decides per batch class.
	PolicyModeAdaptive = "adaptive"
	// PolicyModeOverride: a SetPolicy / PUT /v1/policy pin shadows both.
	PolicyModeOverride = "override"
)

// classOf maps a batch or frame scenario label onto the controller's request
// class: unlabeled traffic pools under "default", mixed batches under
// "mixed" (the scenarioMixed label the metrics splits already use).
func classOf(label string) string {
	if label == "" {
		return PolicyModeDefault
	}
	return label
}

// policyChecker is the optional Backend facet that can vet a DecodePolicy
// against the backend's modulation and engine constraints (core.Accelerator
// implements it). Backends without it get Validate-only checking.
type policyChecker interface {
	CheckPolicy(core.DecodePolicy) error
}

// checkPolicy vets p: structural validation always, backend constraints when
// the validation backend exposes them.
func (s *Scheduler) checkPolicy(p core.DecodePolicy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if pc, ok := s.validator.(policyChecker); ok {
		return pc.CheckPolicy(p)
	}
	return nil
}

// policyFor resolves the DecodePolicy for one batch of the given request
// class, plus the metrics label of the deciding authority ("override",
// "adaptive:<level>", "fixed", or "default"). A nil policy means "decode
// with the backend's base configuration".
func (s *Scheduler) policyFor(class string) (*core.DecodePolicy, string) {
	s.polMu.RLock()
	override, adaptive := s.polOverride, s.polAdaptive
	s.polMu.RUnlock()
	switch {
	case override != nil:
		return override, PolicyModeOverride
	case adaptive && s.cfg.Controller != nil:
		d := s.cfg.Controller.Decide(class, len(s.queue), s.cfg.QueueCap)
		p := d.Policy
		return &p, PolicyModeAdaptive + ":" + d.Level
	case s.cfg.DecodePolicy != nil:
		return s.cfg.DecodePolicy, PolicyModeFixed
	}
	return nil, PolicyModeDefault
}

// PolicyMode reports which authority currently decides batch policies.
func (s *Scheduler) PolicyMode() string {
	s.polMu.RLock()
	defer s.polMu.RUnlock()
	switch {
	case s.polOverride != nil:
		return PolicyModeOverride
	case s.polAdaptive && s.cfg.Controller != nil:
		return PolicyModeAdaptive
	case s.cfg.DecodePolicy != nil:
		return PolicyModeFixed
	}
	return PolicyModeDefault
}

// SetPolicy changes the decode-policy state at runtime (the PUT /v1/policy
// verb). spec is either "adaptive" — resume the configured controller — or
// any core.ParsePolicy spelling, which pins that policy for every batch until
// the next SetPolicy. Pins are vetted against the backend before taking
// effect, so a live service cannot be steered onto an unservable policy.
func (s *Scheduler) SetPolicy(spec string) error {
	if spec == PolicyModeAdaptive {
		if s.cfg.Controller == nil {
			return fmt.Errorf("serve: no adaptive controller configured")
		}
		s.polMu.Lock()
		s.polOverride = nil
		s.polAdaptive = true
		s.polMu.Unlock()
		return nil
	}
	p, err := core.ParsePolicy(spec)
	if err != nil {
		return err
	}
	if err := s.checkPolicy(p); err != nil {
		return err
	}
	s.polMu.Lock()
	s.polOverride = &p
	s.polAdaptive = false
	s.polMu.Unlock()
	return nil
}

// PolicyLevelInfo is one rung of the adaptive ladder as reported by
// GET /v1/policy. Infinite bounds (the unconditional last rung, an
// SNR-ungated level) are omitted rather than serialized — JSON has no Inf.
type PolicyLevelInfo struct {
	Name        string  `json:"name"`
	Policy      string  `json:"policy"`
	MaxPressure float64 `json:"max_pressure,omitempty"`
	MinSNRdB    float64 `json:"min_snr_db,omitempty"`
}

// PolicyInfo is the JSON body of GET /v1/policy: the deciding authority, the
// pinned/fixed policy spelling when one applies, the adaptive ladder and
// per-class controller state when a controller is configured, and the
// decision histogram.
type PolicyInfo struct {
	APIVersion string `json:"api_version"`
	Mode       string `json:"mode"`
	// Policy is the effective pinned spelling in override/fixed mode,
	// "adaptive" in adaptive mode, "default" otherwise.
	Policy    string                `json:"policy"`
	Levels    []PolicyLevelInfo     `json:"levels,omitempty"`
	Classes   []adapt.ClassSnapshot `json:"classes,omitempty"`
	Decisions map[string]uint64     `json:"decisions,omitempty"`
}

// PolicyInfo snapshots the decode-policy state.
func (s *Scheduler) PolicyInfo() PolicyInfo {
	info := PolicyInfo{APIVersion: APIVersion, Mode: s.PolicyMode()}
	switch info.Mode {
	case PolicyModeOverride:
		s.polMu.RLock()
		info.Policy = s.polOverride.String()
		s.polMu.RUnlock()
	case PolicyModeFixed:
		info.Policy = s.cfg.DecodePolicy.String()
	default:
		info.Policy = info.Mode
	}
	if ctrl := s.cfg.Controller; ctrl != nil {
		for _, l := range ctrl.Levels() {
			li := PolicyLevelInfo{Name: l.Name, Policy: l.Policy.String()}
			if !math.IsInf(l.MaxPressure, 1) {
				li.MaxPressure = l.MaxPressure
			}
			if !math.IsInf(l.MinSNRdB, -1) {
				li.MinSNRdB = l.MinSNRdB
			}
			info.Levels = append(info.Levels, li)
		}
		info.Classes = ctrl.Snapshot()
	}
	s.m.mu.Lock()
	if len(s.m.policyDecisions) > 0 {
		info.Decisions = make(map[string]uint64, len(s.m.policyDecisions))
		for k, v := range s.m.policyDecisions {
			info.Decisions[k] = v
		}
	}
	s.m.mu.Unlock()
	return info
}
