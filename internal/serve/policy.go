// Package serve is the online counterpart of internal/stream: a concurrent
// detection service that accepts per-frame decode requests, coalesces them
// into bounded batches, and schedules the batches onto the sphere-decoder
// accelerator under PR 1's anytime budgets.
//
// The coalescing step is where the paper's core refactoring pays off at
// serving time: the GEMM formulation amortizes per-node cost only when many
// independent frames share one dispatch (BLAS-3 child evaluation, one
// channel-estimate transfer per batch), so the scheduler's job is to turn an
// arrival stream of single frames into the batched workload the accelerator
// was designed for — without letting any frame wait longer than MaxWait or
// the queue grow without bound.
package serve

import (
	"fmt"
	"time"

	"repro/internal/stream"
)

// OverloadPolicy selects what Submit does when the admission queue is full.
// It is the live-scheduler face of stream.PolicyMode: Config.SimulationConfig
// maps a serve configuration onto the discrete-event model so the same
// overload scenario can be predicted offline and measured online.
type OverloadPolicy int

const (
	// Reject fails the request immediately with ErrOverloaded (a typed
	// error the HTTP layer turns into 429). The stream-model analogue is
	// DropOnly with a bounded queue.
	Reject OverloadPolicy = iota
	// ShedToLinear decodes the request inline with the linear fallback
	// detector instead of queueing it: the caller gets an immediate
	// Quality "fallback" decision (DegradedBy "overload") at linear cost.
	// The stream-model analogue is stream.ShedToLinear.
	ShedToLinear
	// Block parks the submitter until queue space frees up (or its context
	// expires). The stream-model analogue is an unbounded queue.
	Block
)

// String names the policy as used in flags, logs, and metrics.
func (p OverloadPolicy) String() string {
	switch p {
	case Reject:
		return "reject"
	case ShedToLinear:
		return "shed-to-linear"
	case Block:
		return "block"
	default:
		return fmt.Sprintf("OverloadPolicy(%d)", int(p))
	}
}

// ParseOverloadPolicy is the inverse of String, for flag parsing.
func ParseOverloadPolicy(s string) (OverloadPolicy, error) {
	switch s {
	case "reject":
		return Reject, nil
	case "shed-to-linear", "shed":
		return ShedToLinear, nil
	case "block":
		return Block, nil
	default:
		return 0, fmt.Errorf("serve: unknown overload policy %q (want reject, shed-to-linear, block)", s)
	}
}

// SimulationConfig maps this serving configuration onto the discrete-event
// model in internal/stream, so stream.Simulate can predict the scheduler's
// overload behaviour before a single request is sent.
//
// The mapping works at batch granularity (the stream model's unit of work):
// period is the batch inter-arrival time of the offered load, service the
// full-quality decode time of one coalesced batch, and linearTime the cost
// of the shed path. The request-level admission queue of QueueCap frames
// holds about QueueCap/MaxBatch batches.
func (c Config) SimulationConfig(period, service, linearTime time.Duration) stream.Config {
	c = c.withDefaults()
	out := stream.Config{
		Period:   period,
		Deadline: c.MaxWait + service,
	}
	batchCap := c.QueueCap / c.MaxBatch
	if batchCap < 1 {
		batchCap = 1
	}
	switch c.Policy {
	case Reject:
		out.QueueCap = batchCap
	case ShedToLinear:
		out.QueueCap = 0
		out.Policy = stream.Policy{
			Mode:             stream.ShedToLinear,
			BacklogThreshold: batchCap,
			LinearTime:       linearTime,
		}
	case Block:
		out.QueueCap = 0 // blocking admission is an unbounded queue to the model
	}
	return out
}
