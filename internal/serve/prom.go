package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePrometheus renders a Stats snapshot in the Prometheus text exposition
// format (version 0.0.4). Output order is deterministic: fixed metric
// sequence, label values sorted. Durations are exported in seconds, per the
// Prometheus base-unit convention; the JSON surface keeps nanoseconds.
func WritePrometheus(w io.Writer, st Stats) {
	counter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %s\n", name, help, name, name, formatFloat(v))
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatFloat(v))
	}

	counter("mimosd_requests_submitted_total", "Requests accepted past validation.", float64(st.Submitted))
	counter("mimosd_requests_completed_total", "Requests decoded via a dispatched batch.", float64(st.Completed))
	counter("mimosd_requests_rejected_total", "Requests refused with ErrOverloaded.", float64(st.Rejected))
	counter("mimosd_requests_shed_total", "Requests served inline by the linear fallback.", float64(st.Shed))
	counter("mimosd_requests_invalid_total", "Requests failing admission-time validation.", float64(st.Invalid))
	counter("mimosd_requests_failed_total", "Requests whose batch decode errored.", float64(st.Failed))
	counter("mimosd_batches_total", "Dispatched batches.", float64(st.Batches))
	counter("mimosd_batched_frames_total", "Frames carried by dispatched batches.", float64(st.BatchedFrames))
	counter("mimosd_degraded_frames_total", "Frames finishing below exact quality.", float64(st.Degraded))
	counter("mimosd_simulated_seconds_total", "Modeled FPGA time of everything decoded.", st.SimulatedTime.Seconds())
	counter("mimosd_energy_joules_total", "Modeled FPGA energy of everything decoded.", st.EnergyJ)
	counter("mimosd_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", float64(st.GCPauseNs)/1e9)
	counter("mimosd_worker_panics_total", "Panics recovered from decode workers.", float64(st.Panics))
	counter("mimosd_worker_restarts_total", "Backend rebuilds after panics/wedges/hedges.", float64(st.Restarts))
	counter("mimosd_quarantines_total", "Workers quarantined after exhausting the restart budget.", float64(st.Quarantines))
	counter("mimosd_retries_total", "Extra decode attempts after transient faults.", float64(st.Retries))
	counter("mimosd_retry_budget_exhausted_total", "Retries refused by the token-bucket budget.", float64(st.RetryBudgetExhausted))
	counter("mimosd_hedges_total", "Batches answered by a hedged fallback submit.", float64(st.Hedges))
	counter("mimosd_hedge_waste_total", "Abandoned primary decodes that finished fine.", float64(st.HedgeWaste))
	counter("mimosd_wedges_total", "Primary decodes declared wedged by timeout.", float64(st.Wedges))
	counter("mimosd_abandoned_frames_total", "Frames decoded after their submitter left.", float64(st.Abandoned))
	counter("mimosd_qr_cache_hits_total", "QR preprocessing cache hits across worker backends.", float64(st.QRCacheHits))
	counter("mimosd_qr_cache_misses_total", "QR preprocessing cache misses across worker backends.", float64(st.QRCacheMisses))
	counter("mimosd_breaker_opened_total", "Circuit breaker closed-to-open transitions.", float64(st.BreakerOpened))
	counter("mimosd_breaker_probes_total", "Half-open probe decodes admitted.", float64(st.BreakerProbes))
	counter("mimosd_breaker_reclosed_total", "Circuit breaker half-open-to-closed recoveries.", float64(st.BreakerReclosed))
	counter("mimosd_breaker_short_circuited_total", "Batches refused by an open breaker.", float64(st.BreakerShortCircuit))

	// Every known detection site is emitted (zeros included) so dashboards
	// and the smoke harness can rely on the series existing.
	fmt.Fprintf(w, "# HELP mimosd_sdc_detected_total Detected silent data corruptions by detection site.\n# TYPE mimosd_sdc_detected_total counter\n")
	sites := map[string]uint64{"gemm": 0, "qr-cache": 0, "metric-audit": 0}
	for site, n := range st.SDCDetected {
		sites[site] += n
	}
	siteNames := make([]string, 0, len(sites))
	for site := range sites {
		siteNames = append(siteNames, site)
	}
	sort.Strings(siteNames)
	for _, site := range siteNames {
		fmt.Fprintf(w, "mimosd_sdc_detected_total{site=%q} %d\n", site, sites[site])
	}
	counter("mimosd_sdc_recovered_total", "Detected corruptions neutralized before serving.", float64(st.SDCRecovered))
	counter("mimosd_qr_cache_sdc_evictions_total", "Cached QR factorizations evicted by verify-on-hit.", float64(st.QRCacheSDCEvictions))

	fmt.Fprintf(w, "# HELP mimosd_fallback_frames_total Frames answered by the linear fallback, by reason.\n# TYPE mimosd_fallback_frames_total counter\n")
	reasons := make([]string, 0, len(st.FallbackByReason))
	for r := range st.FallbackByReason {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Fprintf(w, "mimosd_fallback_frames_total{reason=%q} %d\n", r, st.FallbackByReason[r])
	}

	if len(st.PolicyDecisions) > 0 {
		fmt.Fprintf(w, "# HELP mimosd_policy_decisions_total Dispatched batches by the authority that chose their decode policy.\n# TYPE mimosd_policy_decisions_total counter\n")
		sources := make([]string, 0, len(st.PolicyDecisions))
		for s := range st.PolicyDecisions {
			sources = append(sources, s)
		}
		sort.Strings(sources)
		for _, s := range sources {
			fmt.Fprintf(w, "mimosd_policy_decisions_total{source=%q} %d\n", s, st.PolicyDecisions[s])
		}
	}

	fmt.Fprintf(w, "# HELP mimosd_health Current health state (1 on the active state's line).\n# TYPE mimosd_health gauge\n")
	for _, h := range []string{"ok", "degraded", "draining", "unhealthy"} {
		v := 0
		if st.Health == h {
			v = 1
		}
		fmt.Fprintf(w, "mimosd_health{state=%q} %d\n", h, v)
	}

	fmt.Fprintf(w, "# HELP mimosd_frames_by_quality_total Frames by decode quality.\n# TYPE mimosd_frames_by_quality_total counter\n")
	qualities := make([]string, 0, len(st.QualityCounts))
	for q := range st.QualityCounts {
		qualities = append(qualities, q)
	}
	sort.Strings(qualities)
	for _, q := range qualities {
		fmt.Fprintf(w, "mimosd_frames_by_quality_total{quality=%q} %d\n", q, st.QualityCounts[q])
	}

	if len(st.Scenarios) > 0 {
		labels := make([]string, 0, len(st.Scenarios))
		for name := range st.Scenarios {
			labels = append(labels, name)
		}
		sort.Strings(labels)
		fmt.Fprintf(w, "# HELP mimosd_scenario_frames_total Frames served per workload scenario.\n# TYPE mimosd_scenario_frames_total counter\n")
		for _, name := range labels {
			fmt.Fprintf(w, "mimosd_scenario_frames_total{scenario=%q} %d\n", name, st.Scenarios[name].Frames)
		}
		fmt.Fprintf(w, "# HELP mimosd_scenario_degraded_frames_total Below-exact frames per workload scenario.\n# TYPE mimosd_scenario_degraded_frames_total counter\n")
		for _, name := range labels {
			fmt.Fprintf(w, "mimosd_scenario_degraded_frames_total{scenario=%q} %d\n", name, st.Scenarios[name].Degraded)
		}
		fmt.Fprintf(w, "# HELP mimosd_scenario_qr_cache_hits_total QR cache hits generated by a scenario's batches.\n# TYPE mimosd_scenario_qr_cache_hits_total counter\n")
		for _, name := range labels {
			fmt.Fprintf(w, "mimosd_scenario_qr_cache_hits_total{scenario=%q} %d\n", name, st.Scenarios[name].QRCacheHits)
		}
		fmt.Fprintf(w, "# HELP mimosd_scenario_qr_cache_misses_total QR cache misses generated by a scenario's batches.\n# TYPE mimosd_scenario_qr_cache_misses_total counter\n")
		for _, name := range labels {
			fmt.Fprintf(w, "mimosd_scenario_qr_cache_misses_total{scenario=%q} %d\n", name, st.Scenarios[name].QRCacheMisses)
		}
	}

	fmt.Fprintf(w, "# HELP mimosd_batch_size Batches by coalesced size.\n# TYPE mimosd_batch_size histogram\n")
	var cum uint64
	for i, n := range st.BatchSizeHist {
		cum += n
		fmt.Fprintf(w, "mimosd_batch_size_bucket{le=\"%d\"} %d\n", i+1, cum)
	}
	fmt.Fprintf(w, "mimosd_batch_size_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "mimosd_batch_size_sum %d\n", st.BatchedFrames)
	fmt.Fprintf(w, "mimosd_batch_size_count %d\n", st.Batches)

	writeDurHist(w, "mimosd_queue_wait_seconds", "Submit-to-dispatch wait.", st.QueueWait)
	writeDurHist(w, "mimosd_service_seconds", "Batch decode wall time.", st.Service)

	gauge("mimosd_queue_depth", "Frames waiting for a batch slot.", float64(st.QueueDepth))
	gauge("mimosd_in_flight_frames", "Frames inside dispatched batches.", float64(st.InFlight))
	draining := 0.0
	if st.Draining {
		draining = 1
	}
	gauge("mimosd_draining", "1 while Close is draining the scheduler.", draining)
	gauge("mimosd_decode_allocs_per_op", "Approximate heap allocations per completed frame.", st.DecodeAllocsPerOp)
}

// writeDurHist renders a DurationDist as a Prometheus histogram in seconds
// with cumulative bucket counts.
func writeDurHist(w io.Writer, name, help string, d DurationDist) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, b := range d.Bounds {
		if i < len(d.Buckets) {
			cum += d.Buckets[i]
		}
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, formatFloat(b.Seconds()), cum)
	}
	if n := len(d.Bounds); n < len(d.Buckets) {
		cum += d.Buckets[n]
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(d.Sum.Seconds()))
	fmt.Fprintf(w, "%s_count %d\n", name, d.Count)
}

// formatFloat renders a sample value the way Prometheus expects: shortest
// representation that round-trips, no exponent for typical magnitudes.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
