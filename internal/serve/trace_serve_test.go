package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestSchedulerTracePublish: with a hub subscriber, every decoded request
// yields one schema-valid wire frame whose tallies match the decode the
// client saw.
func TestSchedulerTracePublish(t *testing.T) {
	s := newScheduler(t, Config{MaxBatch: 4, MaxWait: time.Millisecond})
	ch := s.Traces().Subscribe(8)
	defer s.Traces().Unsubscribe(ch)

	in := genInputs(t, 1, 31)[0]
	resp, err := s.Submit(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}

	var f *trace.Frame
	select {
	case f = <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("no trace frame published within 2s")
	}
	line, err := f.MarshalLine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ValidateFrame(line); err != nil {
		t.Fatalf("published frame fails schema validation: %v\n%s", err, line)
	}
	if f.Source != "serve" {
		t.Fatalf("source %q", f.Source)
	}
	if f.NodesVisited != resp.Result.Counters.NodesExpanded {
		t.Fatalf("frame visits %d, decode reported %d", f.NodesVisited, resp.Result.Counters.NodesExpanded)
	}
	if f.Quality != resp.Result.Quality.String() {
		t.Fatalf("frame quality %q, decode %q", f.Quality, resp.Result.Quality)
	}
	if f.BatchSpanID == 0 {
		t.Fatal("frame carries no batch span")
	}
	names := map[string]bool{}
	for _, sp := range f.Spans {
		names[sp.Name] = true
		if sp.Name != "batch" && sp.ParentID != f.BatchSpanID {
			t.Fatalf("span %q not parented on the batch span", sp.Name)
		}
	}
	for _, want := range []string{"batch", "queue-wait", "batch-form", "preprocess", "search", "respond"} {
		if !names[want] {
			t.Fatalf("missing span %q (have %v)", want, names)
		}
	}
}

// TestSchedulerTraceInactive: with no subscribers, no frames accumulate and
// the dispatch path never arms tracing.
func TestSchedulerTraceInactive(t *testing.T) {
	s := newScheduler(t, Config{MaxBatch: 2, MaxWait: time.Millisecond})
	if s.Traces().Active() {
		t.Fatal("hub active with no subscribers")
	}
	for _, in := range genInputs(t, 3, 37) {
		if _, err := s.Submit(context.Background(), in); err != nil {
			t.Fatal(err)
		}
	}
	// Subscribing now must not replay anything: publication is live-only.
	ch := s.Traces().Subscribe(4)
	defer s.Traces().Unsubscribe(ch)
	select {
	case f := <-ch:
		t.Fatalf("frame %d published from an untraced batch", f.FrameID)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestHTTPTraceStream: GET /v1/trace streams newline-delimited frames that
// validate against the wire schema, and ends after the requested count.
func TestHTTPTraceStream(t *testing.T) {
	s, srv := newTestServer(t, Config{MaxBatch: 4, MaxWait: time.Millisecond})

	const want = 3
	type streamOut struct {
		lines [][]byte
		err   error
	}
	done := make(chan streamOut, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/v1/trace?frames=" + "3")
		if err != nil {
			done <- streamOut{err: err}
			return
		}
		defer resp.Body.Close()
		var out streamOut
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			out.lines = append(out.lines, append([]byte(nil), sc.Bytes()...))
		}
		out.err = sc.Err()
		done <- out
	}()

	// Wait for the stream to arm tracing before generating traffic.
	deadline := time.Now().Add(2 * time.Second)
	for !s.Traces().Active() {
		if time.Now().After(deadline) {
			t.Fatal("trace subscription never became active")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < want+1; i++ { // one spare in case a publish races the arm
		resp, err := http.Post(srv.URL+"/v1/decode", "application/json", bytes.NewReader(wireRequest(t, 1, uint64(80+i))))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	select {
	case out := <-done:
		if out.err != nil {
			t.Fatal(out.err)
		}
		if len(out.lines) != want {
			t.Fatalf("streamed %d lines, want %d", len(out.lines), want)
		}
		for i, line := range out.lines {
			if _, err := trace.ValidateFrame(line); err != nil {
				t.Fatalf("line %d fails schema validation: %v\n%s", i, err, line)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("trace stream did not complete")
	}

	if resp, err := http.Get(srv.URL + "/v1/trace?frames=nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad frames param: status %d, want 400", resp.StatusCode)
		}
	}
}

// TestHTTPAPIVersionAndTypedErrors: every /v1 body carries api_version, and
// error envelopes carry a machine-readable code — including unknown-field
// rejection.
func TestHTTPAPIVersionAndTypedErrors(t *testing.T) {
	_, srv := newTestServer(t, Config{MaxBatch: 2, MaxWait: time.Millisecond})

	resp, err := http.Post(srv.URL+"/v1/decode", "application/json", bytes.NewReader(wireRequest(t, 1, 83)))
	if err != nil {
		t.Fatal(err)
	}
	var out DecodeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out.APIVersion != APIVersion {
		t.Fatalf("decode api_version %q, want %q", out.APIVersion, APIVersion)
	}

	var info ConfigInfo
	resp, err = http.Get(srv.URL + "/v1/config")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.APIVersion != APIVersion {
		t.Fatalf("config api_version %q, want %q", info.APIVersion, APIVersion)
	}

	cases := []struct {
		name string
		body string
		code string
	}{
		{"unknown field", `{"h":[[[1,0]]],"y":[[1,0]],"noise_var":0.1,"surprise":1}`, CodeBadRequest},
		{"mixed forms", `{"h":[[[1,0]]],"frames":[{"h":[[[1,0]]],"y":[[1,0]],"noise_var":0.1}]}`, CodeBadRequest},
		{"nested frames", `{"frames":[{"frames":[{"h":[[[1,0]]]}]}]}`, CodeBadRequest},
		{"undecodable shape", `{"h":[[[1,0]]],"y":[[1,0],[0,1]],"noise_var":0.1}`, CodeInvalidInput},
	}
	for _, c := range cases {
		resp, err := http.Post(srv.URL+"/v1/decode", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatalf("%s: decoding error envelope: %v", c.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
		if eb.Code != c.code {
			t.Errorf("%s: code %q, want %q", c.name, eb.Code, c.code)
		}
		if eb.Error == "" {
			t.Errorf("%s: empty error message", c.name)
		}
	}
}

// TestHTTPBatchDecode: the frames form decodes every frame and answers with
// per-frame results in request order.
func TestHTTPBatchDecode(t *testing.T) {
	s, srv := newTestServer(t, Config{MaxBatch: 4, MaxWait: 2 * time.Millisecond})
	const n = 5
	var env DecodeRequest
	for i := 0; i < n; i++ {
		var one DecodeRequest
		if err := json.Unmarshal(wireRequest(t, 1, uint64(90+i)), &one); err != nil {
			t.Fatal(err)
		}
		env.Frames = append(env.Frames, one)
	}
	body, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/decode", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out BatchDecodeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.APIVersion != APIVersion {
		t.Fatalf("api_version %q", out.APIVersion)
	}
	if len(out.Results) != n {
		t.Fatalf("%d results for %d frames", len(out.Results), n)
	}
	for i, res := range out.Results {
		if res.Error != "" {
			t.Fatalf("frame %d errored: %s", i, res.Error)
		}
		if res.DecodeResponse == nil || res.Quality != "exact" {
			t.Fatalf("frame %d: %+v", i, res)
		}
	}
	st := s.Stats()
	if st.Completed != n {
		t.Fatalf("completed %d, want %d", st.Completed, n)
	}
	// Concurrent submission must have let the batcher coalesce: fewer
	// dispatches than frames.
	if st.Batches >= n {
		t.Logf("warning: no coalescing observed (batches=%d)", st.Batches)
	}
}

// TestHTTPMetricsPrometheus: /metrics stays JSON by default and renders the
// text exposition on request.
func TestHTTPMetricsPrometheus(t *testing.T) {
	_, srv := newTestServer(t, Config{MaxBatch: 2, MaxWait: time.Millisecond})
	resp, err := http.Post(srv.URL+"/v1/decode", "application/json", bytes.NewReader(wireRequest(t, 1, 97)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("default /metrics content type %q, want JSON", ct)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Completed != 1 {
		t.Fatalf("completed %d", st.Completed)
	}

	resp, err = http.Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prometheus content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"# TYPE mimosd_requests_completed_total counter",
		"mimosd_requests_completed_total 1",
		"# TYPE mimosd_service_seconds histogram",
		`mimosd_service_seconds_bucket{le="+Inf"} 1`,
		`mimosd_frames_by_quality_total{quality="exact"} 1`,
		"mimosd_queue_depth",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}

	req, err := http.NewRequest("GET", srv.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Accept negotiation gave content type %q", ct)
	}
}
