package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// wireScenarioRequest builds a single-frame wire body carrying a scenario
// label, with the channel drawn from the deterministic test stream.
func wireScenarioRequest(t *testing.T, seed uint64, scenario string) []byte {
	t.Helper()
	in := genInputs(t, 1, seed)[0]
	req := DecodeRequest{NoiseVar: in.NoiseVar, Scenario: scenario}
	for i := 0; i < in.H.Rows; i++ {
		row := make([][2]float64, in.H.Cols)
		for j, v := range in.H.Row(i) {
			row[j] = [2]float64{real(v), imag(v)}
		}
		req.H = append(req.H, row)
	}
	for _, v := range in.Y {
		req.Y = append(req.Y, [2]float64{real(v), imag(v)})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postOK(t *testing.T, url string, body []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/decode", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

// TestScenarioMetricsSplit: frames carrying a scenario label must appear in
// the per-scenario stats split with their quality mix, and repeated channel
// bytes must attribute QR-cache hits to the label that generated them.
func TestScenarioMetricsSplit(t *testing.T) {
	s, srv := newTestServer(t, Config{MaxBatch: 2, MaxWait: time.Millisecond})

	// Two requests with identical channel bytes under "grid", one distinct
	// channel under "other", one unlabeled.
	gridBody := wireScenarioRequest(t, 301, "grid")
	postOK(t, srv.URL, gridBody)
	postOK(t, srv.URL, gridBody)
	postOK(t, srv.URL, wireScenarioRequest(t, 302, "other"))
	postOK(t, srv.URL, wireRequest(t, 1, 303))

	st := s.Stats()
	grid, ok := st.Scenarios["grid"]
	if !ok {
		t.Fatalf("no grid split in %+v", st.Scenarios)
	}
	if grid.Frames != 2 {
		t.Errorf("grid frames = %d, want 2", grid.Frames)
	}
	var gridQuality uint64
	for _, n := range grid.Quality {
		gridQuality += n
	}
	if gridQuality != 2 {
		t.Errorf("grid quality mix %v sums to %d, want 2", grid.Quality, gridQuality)
	}
	if other := st.Scenarios["other"]; other.Frames != 1 {
		t.Errorf("other frames = %d, want 1", other.Frames)
	}
	if _, ok := st.Scenarios[""]; ok {
		t.Error("unlabeled frames leaked into the scenario split")
	}

	// The repeated grid channel is a guaranteed cross-batch cache hit; the
	// unlabeled frame's cache traffic must not land in any scenario bucket.
	if grid.QRCacheHits < 1 {
		t.Errorf("grid QR cache hits = %d, want >= 1", grid.QRCacheHits)
	}
	if grid.QRCacheMisses < 1 {
		t.Errorf("grid QR cache misses = %d, want >= 1", grid.QRCacheMisses)
	}
	if rate := grid.HitRate(); rate <= 0 || rate >= 1 {
		t.Errorf("grid hit rate = %v, want in (0, 1)", rate)
	}
	var attributed uint64
	for _, sc := range st.Scenarios {
		attributed += sc.QRCacheHits + sc.QRCacheMisses
	}
	if attributed > st.QRCacheHits+st.QRCacheMisses {
		t.Errorf("scenario-attributed cache traffic %d exceeds global %d",
			attributed, st.QRCacheHits+st.QRCacheMisses)
	}
}

// TestScenarioBatchEnvelope: the batch form's envelope label applies to
// every frame that doesn't override it.
func TestScenarioBatchEnvelope(t *testing.T) {
	s, srv := newTestServer(t, Config{MaxBatch: 4, MaxWait: time.Millisecond})

	var frames []json.RawMessage
	for i := 0; i < 3; i++ {
		frames = append(frames, wireScenarioRequest(t, uint64(401+i), ""))
	}
	env, err := json.Marshal(struct {
		Frames   []json.RawMessage `json:"frames"`
		Scenario string            `json:"scenario"`
	}{frames, "envelope"})
	if err != nil {
		t.Fatal(err)
	}
	postOK(t, srv.URL, env)

	st := s.Stats()
	if sc := st.Scenarios["envelope"]; sc.Frames != 3 {
		t.Fatalf("envelope frames = %d, want 3 (split %+v)", sc.Frames, st.Scenarios)
	}
}

// TestScenarioPrometheusLines: the per-scenario counters must render in the
// Prometheus exposition.
func TestScenarioPrometheusLines(t *testing.T) {
	s, srv := newTestServer(t, Config{MaxBatch: 2, MaxWait: time.Millisecond})
	postOK(t, srv.URL, wireScenarioRequest(t, 501, "prom-check"))

	var buf bytes.Buffer
	WritePrometheus(&buf, s.Stats())
	out := buf.String()
	for _, want := range []string{
		`mimosd_scenario_frames_total{scenario="prom-check"} 1`,
		`mimosd_scenario_qr_cache_misses_total{scenario="prom-check"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}

	resp, err := http.Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
}
