package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/decoder"
	"repro/internal/fpga"
	"repro/internal/mimo"
	"repro/internal/rng"
	"repro/internal/stream"
)

// testMIMO is the system every test serves: small enough that one decode is
// microseconds, big enough that the search is a real tree.
var testMIMO = mimo.Config{Tx: 4, Rx: 4, Mod: constellation.QAM4, Convention: channel.PerTransmitSymbol}

// newFactory returns a Backend factory over the optimized accelerator.
func newFactory(t *testing.T) func() (Backend, error) {
	t.Helper()
	return func() (Backend, error) {
		return core.New(fpga.Optimized, testMIMO.Mod, testMIMO.Tx, testMIMO.Rx, core.Options{ScalarEval: true})
	}
}

// genInputs draws deterministic test frames.
func genInputs(t *testing.T, n int, seed uint64) []core.BatchInput {
	t.Helper()
	r := rng.New(seed)
	out := make([]core.BatchInput, n)
	for i := range out {
		f, err := mimo.GenerateFrame(r, testMIMO, 12)
		if err != nil {
			t.Fatalf("GenerateFrame: %v", err)
		}
		out[i] = core.BatchInput{H: f.H, Y: f.Y, NoiseVar: f.NoiseVar}
	}
	return out
}

// newScheduler builds a started scheduler and registers cleanup.
func newScheduler(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	s, err := New(cfg, newFactory(t))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

// slowBackend wraps a Backend and holds every batch decode for delay —
// deterministic worker saturation for the overload tests.
type slowBackend struct {
	Backend
	delay time.Duration
}

func (b *slowBackend) DecodeBatch(inputs []core.BatchInput, opts ...core.BatchOption) (*core.BatchReport, error) {
	time.Sleep(b.delay)
	return b.Backend.DecodeBatch(inputs, opts...)
}

func newSlowFactory(t *testing.T, delay time.Duration) func() (Backend, error) {
	t.Helper()
	inner := newFactory(t)
	return func() (Backend, error) {
		be, err := inner()
		if err != nil {
			return nil, err
		}
		return &slowBackend{Backend: be, delay: delay}, nil
	}
}

func TestSubmitMatchesDirectDecode(t *testing.T) {
	s := newScheduler(t, Config{MaxBatch: 4, MaxWait: time.Millisecond})
	direct, err := core.New(fpga.Optimized, testMIMO.Mod, testMIMO.Tx, testMIMO.Rx, core.Options{ScalarEval: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range genInputs(t, 8, 7) {
		resp, err := s.Submit(context.Background(), in)
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		want, err := direct.Decode(in.H, in.Y, in.NoiseVar)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(resp.Result.SymbolIdx) != fmt.Sprint(want.SymbolIdx) {
			t.Fatalf("frame %d: served decision %v != direct %v", i, resp.Result.SymbolIdx, want.SymbolIdx)
		}
		if resp.Result.Quality != decoder.QualityExact {
			t.Fatalf("frame %d: quality %v, want exact", i, resp.Result.Quality)
		}
		if resp.BatchSize < 1 || resp.BatchSize > 4 {
			t.Fatalf("frame %d: batch size %d outside [1,4]", i, resp.BatchSize)
		}
	}
	st := s.Stats()
	if st.Completed != 8 || st.Submitted != 8 {
		t.Fatalf("stats: %+v", st)
	}
	if st.QualityCounts["exact"] != 8 {
		t.Fatalf("quality counts %v", st.QualityCounts)
	}
}

// TestSingleRequestMaxWaitExpiry: a lone request must not wait for company
// forever — the batch dispatches at MaxWait with size 1.
func TestSingleRequestMaxWaitExpiry(t *testing.T) {
	const wait = 30 * time.Millisecond
	s := newScheduler(t, Config{MaxBatch: 64, MaxWait: wait})
	in := genInputs(t, 1, 3)[0]
	start := time.Now()
	resp, err := s.Submit(context.Background(), in)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.BatchSize != 1 {
		t.Fatalf("batch size %d, want 1", resp.BatchSize)
	}
	// The batcher held the frame for MaxWait hoping for company.
	if elapsed < wait-5*time.Millisecond {
		t.Fatalf("single request served after %v, before MaxWait %v — timer did not gate dispatch", elapsed, wait)
	}
	if resp.Result.Quality != decoder.QualityExact {
		t.Fatalf("quality %v", resp.Result.Quality)
	}
}

// TestBurstSplitsAtMaxBatch: a burst larger than MaxBatch must split into
// multiple batches, none exceeding MaxBatch.
func TestBurstSplitsAtMaxBatch(t *testing.T) {
	const maxBatch, burst = 8, 27
	s := newScheduler(t, Config{MaxBatch: maxBatch, MaxWait: 20 * time.Millisecond, QueueCap: burst})
	inputs := genInputs(t, burst, 11)
	var wg sync.WaitGroup
	errs := make([]error, burst)
	sizes := make([]int, burst)
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Submit(context.Background(), inputs[i])
			errs[i] = err
			if err == nil {
				sizes[i] = resp.BatchSize
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		if sizes[i] > maxBatch {
			t.Fatalf("request %d served in a batch of %d > MaxBatch %d", i, sizes[i], maxBatch)
		}
	}
	st := s.Stats()
	if st.Completed != burst {
		t.Fatalf("completed %d, want %d", st.Completed, burst)
	}
	// 27 frames cannot fit in fewer than ceil(27/8) = 4 batches.
	if st.Batches < 4 {
		t.Fatalf("burst of %d served in %d batches; MaxBatch %d requires >= 4", burst, st.Batches, maxBatch)
	}
	if len(st.BatchSizeHist) != maxBatch {
		t.Fatalf("batch size hist length %d, want %d", len(st.BatchSizeHist), maxBatch)
	}
	var histFrames uint64
	for i, n := range st.BatchSizeHist {
		histFrames += uint64(i+1) * n
	}
	if histFrames != st.BatchedFrames {
		t.Fatalf("hist accounts for %d frames, stats say %d", histFrames, st.BatchedFrames)
	}
}

// TestCoalescing: under a concurrent burst the mean batch size must exceed
// one — the whole point of the scheduler.
func TestCoalescing(t *testing.T) {
	const burst = 32
	s := newScheduler(t, Config{MaxBatch: 16, MaxWait: 50 * time.Millisecond, QueueCap: burst})
	inputs := genInputs(t, burst, 5)
	var wg sync.WaitGroup
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Submit(context.Background(), inputs[i]); err != nil {
				t.Errorf("Submit %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if st.MeanBatchSize <= 1 {
		t.Fatalf("mean batch size %.2f — burst of %d did not coalesce", st.MeanBatchSize, burst)
	}
}

// TestShutdownDrainsNonEmptyQueue: frames admitted before Close must still
// be decoded, even when the batcher is parked waiting for MaxWait.
func TestShutdownDrainsNonEmptyQueue(t *testing.T) {
	const pending = 5
	s, err := New(Config{MaxBatch: 100, MaxWait: time.Hour, QueueCap: 100}, newFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	inputs := genInputs(t, pending, 17)
	type outcome struct {
		resp *Response
		err  error
	}
	results := make(chan outcome, pending)
	for i := range inputs {
		go func(i int) {
			resp, err := s.Submit(context.Background(), inputs[i])
			results <- outcome{resp, err}
		}(i)
	}
	// Wait until all five are admitted (queued or held by the batcher).
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Submitted < pending {
		if time.Now().After(deadline) {
			t.Fatalf("submissions not admitted: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	s.Close() // must flush the partial batch, not strand it until MaxWait
	for i := 0; i < pending; i++ {
		o := <-results
		if o.err != nil {
			t.Fatalf("pending request failed at shutdown: %v", o.err)
		}
		if o.resp.Result.Quality != decoder.QualityExact {
			t.Fatalf("pending request degraded at shutdown: %v", o.resp.Result.Quality)
		}
	}
	if _, err := s.Submit(context.Background(), inputs[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
	if st := s.Stats(); st.Completed != pending || !st.Draining {
		t.Fatalf("post-close stats %+v", st)
	}
}

// TestOverloadReject: with a saturated worker and a bounded queue, the
// Reject policy must fail surplus load with the typed error instead of
// queueing without bound.
func TestOverloadReject(t *testing.T) {
	const burst = 12
	s, err := New(Config{MaxBatch: 1, MaxWait: time.Millisecond, Workers: 1, QueueCap: 1, Policy: Reject},
		newSlowFactory(t, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	inputs := genInputs(t, burst, 23)
	var wg sync.WaitGroup
	var mu sync.Mutex
	rejected, completed := 0, 0
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Submit(context.Background(), inputs[i])
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				completed++
			case errors.Is(err, ErrOverloaded):
				rejected++
			default:
				t.Errorf("Submit %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if rejected == 0 {
		t.Fatalf("no rejections from a %d-burst against a 50ms worker with QueueCap 1", burst)
	}
	if completed == 0 {
		t.Fatal("everything rejected — admission is broken")
	}
	st := s.Stats()
	if st.Rejected != uint64(rejected) || st.Completed != uint64(completed) {
		t.Fatalf("stats %+v vs observed rejected=%d completed=%d", st, rejected, completed)
	}
}

// TestOverloadShedToLinear: surplus load gets an immediate linear-fallback
// decision instead of an error.
func TestOverloadShedToLinear(t *testing.T) {
	const burst = 12
	s, err := New(Config{MaxBatch: 1, MaxWait: time.Millisecond, Workers: 1, QueueCap: 1, Policy: ShedToLinear},
		newSlowFactory(t, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	inputs := genInputs(t, burst, 29)
	var wg sync.WaitGroup
	var mu sync.Mutex
	shed := 0
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Submit(context.Background(), inputs[i])
			if err != nil {
				t.Errorf("Submit %d: %v (shed policy must never error on overload)", i, err)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if resp.Shed {
				shed++
				if resp.Result.Quality != decoder.QualityFallback {
					t.Errorf("shed response quality %v, want fallback", resp.Result.Quality)
				}
				if resp.Result.DegradedBy != decoder.DegradedByOverload {
					t.Errorf("shed response DegradedBy %q, want %q", resp.Result.DegradedBy, decoder.DegradedByOverload)
				}
			}
		}(i)
	}
	wg.Wait()
	if shed == 0 {
		t.Fatalf("no sheds from a %d-burst against a 50ms worker with QueueCap 1", burst)
	}
	st := s.Stats()
	if st.Shed != uint64(shed) {
		t.Fatalf("stats shed %d, observed %d", st.Shed, shed)
	}
	if st.QualityCounts["fallback"] == 0 {
		t.Fatalf("quality counts missing fallback: %v", st.QualityCounts)
	}
}

// TestOverloadBlock: every request eventually completes at full quality;
// a context deadline frees a parked submitter.
func TestOverloadBlock(t *testing.T) {
	const burst = 8
	s, err := New(Config{MaxBatch: 1, MaxWait: time.Millisecond, Workers: 1, QueueCap: 1, Policy: Block},
		newSlowFactory(t, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	inputs := genInputs(t, burst, 31)
	var wg sync.WaitGroup
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Submit(context.Background(), inputs[i])
			if err != nil {
				t.Errorf("Submit %d: %v", i, err)
				return
			}
			if resp.Result.Quality != decoder.QualityExact {
				t.Errorf("Submit %d: quality %v under Block (nothing should degrade)", i, resp.Result.Quality)
			}
		}(i)
	}
	wg.Wait()
	if st := s.Stats(); st.Completed != burst || st.Rejected != 0 || st.Shed != 0 {
		t.Fatalf("stats %+v", st)
	}

	// Saturate again and park a submitter behind a tiny context deadline.
	var hold sync.WaitGroup
	for i := 0; i < 4; i++ {
		hold.Add(1)
		go func(i int) {
			defer hold.Done()
			_, _ = s.Submit(context.Background(), inputs[i])
		}(i)
	}
	time.Sleep(2 * time.Millisecond) // let the saturators claim the queue
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
	defer cancel()
	if _, err := s.Submit(ctx, inputs[4]); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("parked submit: %v, want context.DeadlineExceeded", err)
	}
	hold.Wait()
}

// TestConcurrentSubmitters hammers the scheduler from many goroutines;
// run under -race this is the data-race regression for the whole package.
func TestConcurrentSubmitters(t *testing.T) {
	const workers, perWorker = 8, 16
	s := newScheduler(t, Config{MaxBatch: 8, MaxWait: 2 * time.Millisecond, Workers: 2, QueueCap: 64})
	inputs := genInputs(t, workers*perWorker, 41)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := s.Submit(context.Background(), inputs[w*perWorker+i]); err != nil {
					t.Errorf("worker %d submit %d: %v", w, i, err)
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Completed != workers*perWorker {
		t.Fatalf("completed %d, want %d", st.Completed, workers*perWorker)
	}
	if st.QueueWait.Count != workers*perWorker || st.QueueDepth != 0 || st.InFlight != 0 {
		t.Fatalf("inconsistent stats %+v", st)
	}
}

// TestCloseDuringSubmissions races Close against live traffic: every submit
// must resolve to either a decision or ErrClosed — never hang, never panic.
func TestCloseDuringSubmissions(t *testing.T) {
	s, err := New(Config{MaxBatch: 4, MaxWait: time.Millisecond, Workers: 2, QueueCap: 16, Policy: Block}, newFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	inputs := genInputs(t, 64, 43)
	var wg sync.WaitGroup
	var mu sync.Mutex
	served, closed := 0, 0
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Submit(context.Background(), inputs[i])
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				served++
			case errors.Is(err, ErrClosed):
				closed++
			default:
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
	}
	time.Sleep(500 * time.Microsecond)
	s.Close()
	wg.Wait()
	if served+closed != len(inputs) {
		t.Fatalf("served %d + closed %d != %d", served, closed, len(inputs))
	}
}

func TestInvalidInputAtAdmission(t *testing.T) {
	s := newScheduler(t, Config{})
	in := genInputs(t, 1, 47)[0]
	bad := in
	bad.NoiseVar = -1
	if _, err := s.Submit(context.Background(), bad); !errors.Is(err, core.ErrInvalidInput) {
		t.Fatalf("negative noise variance: %v, want ErrInvalidInput", err)
	}
	wrongY := in
	wrongY.Y = wrongY.Y[:len(wrongY.Y)-1]
	if _, err := s.Submit(context.Background(), wrongY); !errors.Is(err, core.ErrInvalidInput) {
		t.Fatalf("short observation: %v, want ErrInvalidInput", err)
	}
	if st := s.Stats(); st.Invalid != 2 || st.Submitted != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestBatchBudgetDegradesNotDrops: a starved node budget degrades quality
// but every frame still gets a decision.
func TestBatchBudgetDegradesNotDrops(t *testing.T) {
	const burst = 16
	s := newScheduler(t, Config{
		MaxBatch: 8, MaxWait: 20 * time.Millisecond, QueueCap: burst,
		Budget: core.BatchBudget{NodeBudget: 1},
	})
	inputs := genInputs(t, burst, 53)
	var wg sync.WaitGroup
	var mu sync.Mutex
	degraded := 0
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Submit(context.Background(), inputs[i])
			if err != nil {
				t.Errorf("Submit %d: %v (budgets must degrade, not error)", i, err)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if resp.Result.Quality.Degraded() {
				degraded++
			}
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if st.Completed != burst {
		t.Fatalf("completed %d, want %d", st.Completed, burst)
	}
	if degraded == 0 || st.Degraded == 0 {
		t.Fatal("a 1-node budget over multi-frame batches produced no degraded results")
	}
}

// --- Satellite: enum String coverage ---------------------------------------

func TestOverloadPolicyString(t *testing.T) {
	cases := map[OverloadPolicy]string{
		Reject:             "reject",
		ShedToLinear:       "shed-to-linear",
		Block:              "block",
		OverloadPolicy(99): "OverloadPolicy(99)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
	for _, p := range []OverloadPolicy{Reject, ShedToLinear, Block} {
		got, err := ParseOverloadPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseOverloadPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseOverloadPolicy("yolo"); err == nil {
		t.Error("ParseOverloadPolicy accepted garbage")
	}
	// The other enums that render in logs/metrics must also name themselves.
	if decoder.QualityBestEffort.String() != "best-effort" {
		t.Errorf("Quality.String: %q", decoder.QualityBestEffort.String())
	}
	if stream.ShedToLinear.String() != "shed-to-linear" {
		t.Errorf("PolicyMode.String: %q", stream.ShedToLinear.String())
	}
}

// --- Metrics unit coverage --------------------------------------------------

func TestDurationDistQuantile(t *testing.T) {
	var h durHist
	if q := h.snapshot().Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile %v", q)
	}
	for i := 0; i < 90; i++ {
		h.observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.observe(40 * time.Millisecond)
	}
	d := h.snapshot()
	if p50 := d.Quantile(0.50); p50 > time.Millisecond {
		t.Fatalf("p50 %v, want <= 100µs bucket", p50)
	}
	if p99 := d.Quantile(0.99); p99 < 10*time.Millisecond {
		t.Fatalf("p99 %v, want in the tens-of-ms bucket", p99)
	}
	if d.Max != 40*time.Millisecond {
		t.Fatalf("max %v", d.Max)
	}
	if mean := d.Mean(); mean < 3*time.Millisecond || mean > 6*time.Millisecond {
		t.Fatalf("mean %v", mean)
	}
}

// TestRuntimeHealthStats: the /metrics runtime fields must populate — a
// non-zero (or at least well-defined) cumulative GC pause and a finite
// allocs-per-frame figure once frames have completed.
func TestRuntimeHealthStats(t *testing.T) {
	s := newScheduler(t, Config{MaxBatch: 4, MaxWait: time.Millisecond})
	for i, in := range genInputs(t, 6, 31) {
		if _, err := s.Submit(context.Background(), in); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Completed != 6 {
		t.Fatalf("completed %d, want 6", st.Completed)
	}
	// Allocations certainly happened between newMetrics and now (the test
	// harness alone allocates), so per-frame allocs must be strictly
	// positive and finite.
	if st.DecodeAllocsPerOp <= 0 || math.IsInf(st.DecodeAllocsPerOp, 0) || math.IsNaN(st.DecodeAllocsPerOp) {
		t.Fatalf("decode_allocs_per_op = %v, want finite > 0", st.DecodeAllocsPerOp)
	}
	// GCPauseNs is cumulative since process start; forcing a cycle makes it
	// observable regardless of how little the suite has allocated so far.
	runtime.GC()
	if got := s.Stats().GCPauseNs; got == 0 {
		t.Fatalf("go_gc_pause_ns = 0 after forced GC")
	}
}
