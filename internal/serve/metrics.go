package serve

import (
	"runtime"
	"sync"
	"time"
)

// durBounds are the upper edges of the latency histogram buckets. The last
// bucket is unbounded. Exponentialish spacing from 10µs to 5s covers both
// the µs-scale decode of small systems and pathological queueing tails.
var durBounds = []time.Duration{
	10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2 * time.Second, 5 * time.Second,
}

// DurationDist is a snapshot of a latency distribution: exact count/sum/max
// plus bucket counts against durBounds for quantile estimates.
type DurationDist struct {
	Count   uint64          `json:"count"`
	Sum     time.Duration   `json:"sum_ns"`
	Max     time.Duration   `json:"max_ns"`
	Buckets []uint64        `json:"buckets"`
	Bounds  []time.Duration `json:"bounds_ns"`
}

// Mean returns the exact mean (0 when empty).
func (d DurationDist) Mean() time.Duration {
	if d.Count == 0 {
		return 0
	}
	return d.Sum / time.Duration(d.Count)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) from the
// bucket counts: the upper edge of the bucket the quantile falls in, or Max
// for the unbounded bucket. Zero when empty.
func (d DurationDist) Quantile(q float64) time.Duration {
	if d.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(d.Count))
	if rank >= d.Count {
		rank = d.Count - 1
	}
	var cum uint64
	for i, n := range d.Buckets {
		cum += n
		if rank < cum {
			if i < len(d.Bounds) {
				return d.Bounds[i]
			}
			return d.Max
		}
	}
	return d.Max
}

// durHist is the mutable accumulator behind DurationDist. Callers hold the
// metrics mutex.
type durHist struct {
	count   uint64
	sum     time.Duration
	max     time.Duration
	buckets []uint64 // len(durBounds)+1, last is unbounded
}

func (h *durHist) observe(d time.Duration) {
	if h.buckets == nil {
		h.buckets = make([]uint64, len(durBounds)+1)
	}
	if d < 0 {
		d = 0
	}
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	for i, b := range durBounds {
		if d <= b {
			h.buckets[i]++
			return
		}
	}
	h.buckets[len(durBounds)]++
}

func (h *durHist) snapshot() DurationDist {
	buckets := h.buckets
	if buckets == nil {
		buckets = make([]uint64, len(durBounds)+1)
	}
	return DurationDist{
		Count:   h.count,
		Sum:     h.sum,
		Max:     h.max,
		Buckets: append([]uint64(nil), buckets...),
		Bounds:  append([]time.Duration(nil), durBounds...),
	}
}

// Stats is a point-in-time snapshot of the scheduler's counters. All fields
// are cumulative since construction except the gauges at the bottom.
type Stats struct {
	// Request accounting.
	Submitted uint64 `json:"submitted"` // accepted past validation
	Completed uint64 `json:"completed"` // decoded via a dispatched batch
	Rejected  uint64 `json:"rejected"`  // refused with ErrOverloaded
	Shed      uint64 `json:"shed"`      // served inline by the linear fallback
	Invalid   uint64 `json:"invalid"`   // failed admission-time validation
	Failed    uint64 `json:"failed"`    // dispatched but the batch decode errored

	// Batch accounting.
	Batches       uint64   `json:"batches"`
	BatchedFrames uint64   `json:"batched_frames"`
	MeanBatchSize float64  `json:"mean_batch_size"`
	BatchSizeHist []uint64 `json:"batch_size_hist"` // index i counts batches of size i+1
	SimulatedTotal
	// QualityCounts histograms completed+shed frames by decode quality
	// ("exact", "best-effort", "fallback").
	QualityCounts map[string]uint64 `json:"quality_counts"`
	Degraded      uint64            `json:"degraded"`

	// Latency distributions.
	QueueWait DurationDist `json:"queue_wait"` // submit → batch dispatch
	Service   DurationDist `json:"service"`    // batch decode wall time

	// Resilience accounting (see resilient.go). FallbackByReason histograms
	// fallback-served frames by the DegradedBy reason they carry; the breaker
	// counters aggregate transitions across every worker's breaker.
	Panics               uint64            `json:"panics"`
	Restarts             uint64            `json:"worker_restarts"`
	Quarantines          uint64            `json:"quarantines"`
	Retries              uint64            `json:"retries"`
	RetryBudgetExhausted uint64            `json:"retry_budget_exhausted"`
	Hedges               uint64            `json:"hedges"`
	HedgeWaste           uint64            `json:"hedge_waste"` // abandoned primaries that finished fine
	Wedges               uint64            `json:"wedges"`
	Abandoned            uint64            `json:"abandoned_frames"` // decoded but the submitter had left
	FallbackByReason     map[string]uint64 `json:"fallback_by_reason,omitempty"`
	// QRCacheHits/Misses aggregate the preprocessing-cache effectiveness
	// across the worker backends: the live cache-locality signal affinity
	// routing is judged by.
	QRCacheHits         uint64 `json:"qr_cache_hits"`
	QRCacheMisses       uint64 `json:"qr_cache_misses"`
	BreakerOpened       uint64 `json:"breaker_opened"`
	BreakerProbes       uint64 `json:"breaker_probes"`
	BreakerReclosed     uint64 `json:"breaker_reclosed"`
	BreakerShortCircuit uint64 `json:"breaker_short_circuited"`
	// SDCDetected counts detected silent data corruptions by site:
	// "gemm" (ABFT checksum mismatches repaired inside the search),
	// "qr-cache" (verify-on-hit payload mismatches, evicted + refactored),
	// "metric-audit" (reports rejected by the re-encode audit). SDCRecovered
	// totals detections neutralized before any frame shipped corrupted —
	// detected-without-recovered would mean a corrupted answer was served,
	// which the defense never allows, so the two track each other.
	SDCDetected  map[string]uint64 `json:"sdc_detected"`
	SDCRecovered uint64            `json:"sdc_recovered"`
	// QRCacheSDCEvictions mirrors SDCDetected["qr-cache"]: cached QR
	// factorizations dropped because their payload checksum failed on a hit.
	QRCacheSDCEvictions uint64 `json:"qr_cache_sdc_evictions"`
	Health              string `json:"health"`
	LastPanic           string `json:"last_panic,omitempty"`

	// PolicyDecisions counts dispatched batches by the authority that picked
	// their DecodePolicy: "default" (none applied), "fixed" (Config),
	// "override" (SetPolicy pin), or "adaptive:<level>" (controller rung).
	PolicyDecisions map[string]uint64 `json:"policy_decisions,omitempty"`

	// Scenarios splits completed frames by the workload label attached at
	// SubmitScenario: quality mix plus the QR-cache traffic the label's
	// batches generated. Batches that coalesced frames from different
	// labels account their cache delta under "mixed". Absent until the
	// first labeled frame completes.
	Scenarios map[string]ScenarioStats `json:"scenarios,omitempty"`

	// Gauges.
	QueueDepth int  `json:"queue_depth"` // frames waiting for a batch slot
	InFlight   int  `json:"in_flight"`   // frames inside dispatched batches
	Draining   bool `json:"draining"`    // Close has begun

	// Runtime health. GCPauseNs is the process's cumulative stop-the-world
	// GC pause time; DecodeAllocsPerOp is heap allocations per completed
	// frame since the scheduler started (process-wide mallocs over
	// completions, so it is approximate — HTTP plumbing allocates too — but
	// it trends to the decode hot path's figure under sustained load and is
	// the regression signal for the zero-alloc search contract).
	GCPauseNs         uint64  `json:"go_gc_pause_ns"`
	DecodeAllocsPerOp float64 `json:"decode_allocs_per_op"`
}

// SimulatedTotal aggregates the modeled hardware cost of everything decoded
// so far — what the Alveo pipeline would have spent on the served load.
type SimulatedTotal struct {
	SimulatedTime time.Duration `json:"simulated_ns"`
	EnergyJ       float64       `json:"energy_j"`
}

// scenarioMixed is the label charged with the QR-cache delta of batches
// whose frames carried different scenario labels.
const scenarioMixed = "mixed"

// ScenarioStats is one workload label's slice of the scheduler's traffic.
type ScenarioStats struct {
	Frames        uint64            `json:"frames"`
	Quality       map[string]uint64 `json:"quality"`
	Degraded      uint64            `json:"degraded"`
	QRCacheHits   uint64            `json:"qr_cache_hits"`
	QRCacheMisses uint64            `json:"qr_cache_misses"`
}

// HitRate returns QR-cache hits / (hits + misses), 0 when no traffic.
func (s ScenarioStats) HitRate() float64 {
	total := s.QRCacheHits + s.QRCacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.QRCacheHits) / float64(total)
}

// scenarioAgg is the mutable accumulator behind ScenarioStats.
type scenarioAgg struct {
	frames      uint64
	quality     map[string]uint64
	degraded    uint64
	cacheHits   uint64
	cacheMisses uint64
}

// metrics is the scheduler's internal accumulator.
type metrics struct {
	mu            sync.Mutex
	submitted     uint64
	completed     uint64
	rejected      uint64
	shed          uint64
	invalid       uint64
	failed        uint64
	batches       uint64
	batchedFrames uint64
	batchSizes    []uint64 // index i counts batches of size i+1
	simTime       time.Duration
	energyJ       float64
	quality       map[string]uint64
	degraded      uint64
	queueWait     durHist
	service       durHist
	inFlight      int
	baseMallocs   uint64 // heap mallocs at construction

	// Resilience counters (guarded by mu like everything else).
	panics               uint64
	restarts             uint64
	quarantines          uint64
	retries              uint64
	retryBudgetExhausted uint64
	hedges               uint64
	hedgeWaste           uint64
	wedges               uint64
	abandoned            uint64
	fallbackByReason     map[string]uint64
	lastPanic            string
	// SDC accounting by detection site (gemm and metric-audit accumulate
	// here; the qr-cache site is polled off the worker backends at snapshot
	// time in Scheduler.Stats).
	sdcDetected  map[string]uint64
	sdcRecovered uint64

	// policyDecisions counts dispatched batches by the authority that chose
	// their DecodePolicy ("default", "fixed", "override", "adaptive:<level>").
	policyDecisions map[string]uint64

	// scenarios splits labeled traffic (guarded by mu; lazily allocated).
	scenarios map[string]*scenarioAgg
}

// scenarioAgg returns (allocating on first use) the accumulator for one
// workload label. Callers hold mu.
func (m *metrics) scenarioAgg(label string) *scenarioAgg {
	if m.scenarios == nil {
		m.scenarios = make(map[string]*scenarioAgg, 4)
	}
	agg := m.scenarios[label]
	if agg == nil {
		agg = &scenarioAgg{quality: make(map[string]uint64, 3)}
		m.scenarios[label] = agg
	}
	return agg
}

func newMetrics(maxBatch int) *metrics {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &metrics{
		batchSizes:       make([]uint64, maxBatch),
		quality:          make(map[string]uint64, 3),
		fallbackByReason: make(map[string]uint64, 4),
		policyDecisions:  make(map[string]uint64, 4),
		sdcDetected:      make(map[string]uint64, 3),
		baseMallocs:      ms.Mallocs,
	}
}

func (m *metrics) snapshot(queueDepth int, draining bool) Stats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms) // outside the lock: it stops the world, not us
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		Submitted:     m.submitted,
		Completed:     m.completed,
		Rejected:      m.rejected,
		Shed:          m.shed,
		Invalid:       m.invalid,
		Failed:        m.failed,
		Batches:       m.batches,
		BatchedFrames: m.batchedFrames,
		BatchSizeHist: append([]uint64(nil), m.batchSizes...),
		SimulatedTotal: SimulatedTotal{
			SimulatedTime: m.simTime,
			EnergyJ:       m.energyJ,
		},
		QualityCounts: make(map[string]uint64, len(m.quality)),
		Degraded:      m.degraded,
		QueueWait:     m.queueWait.snapshot(),
		Service:       m.service.snapshot(),
		QueueDepth:    queueDepth,
		InFlight:      m.inFlight,
		Draining:      draining,

		Panics:               m.panics,
		Restarts:             m.restarts,
		Quarantines:          m.quarantines,
		Retries:              m.retries,
		RetryBudgetExhausted: m.retryBudgetExhausted,
		Hedges:               m.hedges,
		HedgeWaste:           m.hedgeWaste,
		Wedges:               m.wedges,
		Abandoned:            m.abandoned,
		SDCDetected:          make(map[string]uint64, len(m.sdcDetected)),
		SDCRecovered:         m.sdcRecovered,
		LastPanic:            m.lastPanic,
	}
	for k, v := range m.sdcDetected {
		st.SDCDetected[k] = v
	}
	for k, v := range m.quality {
		st.QualityCounts[k] = v
	}
	if len(m.fallbackByReason) > 0 {
		st.FallbackByReason = make(map[string]uint64, len(m.fallbackByReason))
		for k, v := range m.fallbackByReason {
			st.FallbackByReason[k] = v
		}
	}
	if len(m.policyDecisions) > 0 {
		st.PolicyDecisions = make(map[string]uint64, len(m.policyDecisions))
		for k, v := range m.policyDecisions {
			st.PolicyDecisions[k] = v
		}
	}
	if len(m.scenarios) > 0 {
		st.Scenarios = make(map[string]ScenarioStats, len(m.scenarios))
		for label, agg := range m.scenarios {
			sc := ScenarioStats{
				Frames:        agg.frames,
				Quality:       make(map[string]uint64, len(agg.quality)),
				Degraded:      agg.degraded,
				QRCacheHits:   agg.cacheHits,
				QRCacheMisses: agg.cacheMisses,
			}
			for k, v := range agg.quality {
				sc.Quality[k] = v
			}
			st.Scenarios[label] = sc
		}
	}
	if m.batches > 0 {
		st.MeanBatchSize = float64(m.batchedFrames) / float64(m.batches)
	}
	st.GCPauseNs = ms.PauseTotalNs
	if done := m.completed + m.shed; done > 0 && ms.Mallocs >= m.baseMallocs {
		st.DecodeAllocsPerOp = float64(ms.Mallocs-m.baseMallocs) / float64(done)
	}
	return st
}
