package stream

import (
	"testing"
	"time"
)

func ms(v float64) time.Duration { return time.Duration(v * float64(time.Millisecond)) }

func uniform(n int, v time.Duration) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestUnderloadedStreamAllOnTime(t *testing.T) {
	cfg := Config{Period: ms(10)}
	res, err := Simulate(cfg, uniform(100, ms(2)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Missed != 0 || res.Dropped != 0 || res.OnTime != 100 {
		t.Fatalf("underloaded stream missed: %+v", res)
	}
	if res.MeanSojourn != ms(2) || res.MaxSojourn != ms(2) {
		t.Fatalf("sojourn should equal service time: %+v", res)
	}
	if res.MaxBacklog != 1 {
		t.Fatalf("backlog %d, want 1 (only the in-service batch)", res.MaxBacklog)
	}
	if res.Utilization < 0.15 || res.Utilization > 0.25 {
		t.Fatalf("utilization %v, want ~0.2", res.Utilization)
	}
}

func TestOverloadedStreamCascades(t *testing.T) {
	// Service 12 ms > period 10 ms: every batch adds 2 ms of backlog, so
	// sojourns grow linearly and later batches miss by more and more.
	cfg := Config{Period: ms(10)}
	res, err := Simulate(cfg, uniform(50, ms(12)))
	if err != nil {
		t.Fatal(err)
	}
	if res.OnTime > 1 {
		t.Fatalf("overloaded stream should miss almost everything: %+v", res)
	}
	// Last sojourn ≈ 12 + 49·2 = 110 ms.
	if res.MaxSojourn < ms(100) {
		t.Fatalf("cascade too small: max sojourn %v", res.MaxSojourn)
	}
	if res.Utilization < 0.99 {
		t.Fatalf("overloaded utilization %v", res.Utilization)
	}
}

func TestSingleSlowBatchRecovers(t *testing.T) {
	// One pathological batch (25 ms) in an otherwise light stream: it and
	// its immediate successors miss, then the queue drains.
	svc := uniform(30, ms(2))
	svc[5] = ms(25)
	cfg := Config{Period: ms(10)}
	res, err := Simulate(cfg, svc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Missed == 0 {
		t.Fatal("pathological batch should miss")
	}
	if res.Missed > 3 {
		t.Fatalf("cascade should be short: %d missed", res.Missed)
	}
	if res.MissRate() >= 0.2 {
		t.Fatalf("miss rate %v too high", res.MissRate())
	}
}

func TestExplicitDeadline(t *testing.T) {
	cfg := Config{Period: ms(10), Deadline: ms(3)}
	res, err := Simulate(cfg, uniform(10, ms(5)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Missed != 10 {
		t.Fatalf("5 ms service vs 3 ms deadline: all should miss, got %+v", res)
	}
}

func TestQueueCapDrops(t *testing.T) {
	cfg := Config{Period: ms(10), QueueCap: 2}
	res, err := Simulate(cfg, uniform(40, ms(30)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatalf("bounded queue under overload must drop: %+v", res)
	}
	if res.Dropped+res.Missed+res.OnTime != res.Batches {
		t.Fatalf("accounting broken: %+v", res)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Simulate(Config{Period: 0}, uniform(1, ms(1))); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := Simulate(Config{Period: ms(10)}, nil); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := Simulate(Config{Period: ms(10)}, []time.Duration{-1}); err == nil {
		t.Error("negative service time accepted")
	}
	if _, err := Simulate(Config{Period: ms(10), Deadline: -ms(1)}, uniform(1, ms(1))); err == nil {
		t.Error("negative deadline accepted")
	}
}

func TestP99AboveMean(t *testing.T) {
	svc := uniform(200, ms(1))
	for i := 0; i < 200; i += 50 {
		svc[i] = ms(9)
	}
	res, err := Simulate(Config{Period: ms(10)}, svc)
	if err != nil {
		t.Fatal(err)
	}
	if res.P99Sojourn < res.MeanSojourn {
		t.Fatalf("p99 %v below mean %v", res.P99Sojourn, res.MeanSojourn)
	}
	if res.MaxSojourn < res.P99Sojourn {
		t.Fatalf("max %v below p99 %v", res.MaxSojourn, res.P99Sojourn)
	}
}

func TestMissRate(t *testing.T) {
	r := &Result{Batches: 10, Missed: 1, Dropped: 1}
	if r.MissRate() != 0.2 {
		t.Fatalf("miss rate %v", r.MissRate())
	}
	if (&Result{}).MissRate() != 0 {
		t.Fatal("empty miss rate")
	}
}

func TestShrinkBudgetBeatsDropOnly(t *testing.T) {
	// A sustained overload: every batch costs 1.5 periods at full quality,
	// with a deadline of three periods (degradation buys time across TTIs).
	// Drop-only fills the queue — survivors wait ~3 periods and miss anyway;
	// shrinking to half cost brings degraded batches under the period, so
	// the backlog drains and completions stay inside the deadline.
	svc := uniform(200, ms(15))
	dropCfg := Config{Period: ms(10), Deadline: ms(30), QueueCap: 3}
	drop, err := Simulate(dropCfg, svc)
	if err != nil {
		t.Fatal(err)
	}
	shrinkCfg := dropCfg
	shrinkCfg.Policy = Policy{Mode: ShrinkBudget, Shrink: 0.5}
	shrink, err := Simulate(shrinkCfg, svc)
	if err != nil {
		t.Fatal(err)
	}
	if shrink.MissRate() >= drop.MissRate() {
		t.Fatalf("shrink miss rate %.3f not below drop-only %.3f", shrink.MissRate(), drop.MissRate())
	}
	if shrink.Degraded == 0 {
		t.Fatal("overloaded shrink policy degraded nothing")
	}
	if shrink.Quality[QualityBestEffort] != shrink.Degraded {
		t.Fatalf("quality histogram %v inconsistent with Degraded=%d", shrink.Quality, shrink.Degraded)
	}
	total := 0
	for _, n := range shrink.Quality {
		total += n
	}
	if total+shrink.Dropped != shrink.Batches {
		t.Fatalf("histogram %v + dropped %d != batches %d", shrink.Quality, shrink.Dropped, shrink.Batches)
	}
}

func TestShedToLinearBeatsDropOnly(t *testing.T) {
	svc := uniform(200, ms(18))
	dropCfg := Config{Period: ms(10), Deadline: ms(30), QueueCap: 2}
	drop, err := Simulate(dropCfg, svc)
	if err != nil {
		t.Fatal(err)
	}
	shedCfg := dropCfg
	shedCfg.Policy = Policy{Mode: ShedToLinear, LinearTime: ms(1)}
	shed, err := Simulate(shedCfg, svc)
	if err != nil {
		t.Fatal(err)
	}
	if shed.MissRate() >= drop.MissRate() {
		t.Fatalf("shed miss rate %.3f not below drop-only %.3f", shed.MissRate(), drop.MissRate())
	}
	if shed.Quality[QualityFallback] == 0 {
		t.Fatal("no batch shed to the linear decoder")
	}
	if shed.Dropped >= drop.Dropped && drop.Dropped > 0 {
		t.Fatalf("shedding dropped %d, drop-only dropped %d", shed.Dropped, drop.Dropped)
	}
}

func TestPolicyIdleStreamStaysExact(t *testing.T) {
	// Degradation must not trigger without backlog.
	cfg := Config{Period: ms(10), Policy: Policy{Mode: ShrinkBudget}}
	res, err := Simulate(cfg, uniform(50, ms(2)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != 0 || res.Quality[QualityExact] != 50 {
		t.Fatalf("idle stream degraded: %v", res.Quality)
	}
}

func TestPolicyValidation(t *testing.T) {
	svc := uniform(3, ms(1))
	if _, err := Simulate(Config{Period: ms(10), Policy: Policy{Mode: ShrinkBudget, Shrink: 1.5}}, svc); err == nil {
		t.Error("shrink > 1 accepted")
	}
	if _, err := Simulate(Config{Period: ms(10), Policy: Policy{Mode: ShrinkBudget, Shrink: -0.5}}, svc); err == nil {
		t.Error("negative shrink accepted")
	}
	if _, err := Simulate(Config{Period: ms(10), Policy: Policy{Mode: ShedToLinear}}, svc); err == nil {
		t.Error("shed without LinearTime accepted")
	}
	if _, err := Simulate(Config{Period: ms(10), Policy: Policy{Mode: PolicyMode(9)}}, svc); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := Simulate(Config{Period: ms(10), Policy: Policy{Mode: ShrinkBudget, BacklogThreshold: -1}}, svc); err == nil {
		t.Error("negative threshold accepted")
	}
}

func TestQueueCapDropAccounting(t *testing.T) {
	// Every batch costs 3 periods; with QueueCap 1 the engine serves one,
	// and while it runs the wait for newcomers is >= 1 period, so they drop
	// until the engine frees. Dropped + completed must equal arrivals and
	// drops must never be served.
	cfg := Config{Period: ms(10), QueueCap: 1}
	res, err := Simulate(cfg, uniform(30, ms(30)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("no drops under 3x overload with QueueCap 1")
	}
	if res.Dropped+res.OnTime+res.Missed != res.Batches {
		t.Fatalf("accounting: %d dropped + %d on-time + %d missed != %d",
			res.Dropped, res.OnTime, res.Missed, res.Batches)
	}
	if res.MaxBacklog > cfg.QueueCap+1 {
		t.Fatalf("backlog %d exceeded cap %d + in-service", res.MaxBacklog, cfg.QueueCap)
	}
}

func TestZeroAndNegativePeriod(t *testing.T) {
	if _, err := Simulate(Config{Period: 0}, uniform(3, ms(1))); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := Simulate(Config{Period: -ms(1)}, uniform(3, ms(1))); err == nil {
		t.Error("negative period accepted")
	}
}

func TestDeadlineLongerThanPeriod(t *testing.T) {
	// Deadline 3x the period: transient backlog is fine as long as sojourn
	// stays under the deadline.
	cfg := Config{Period: ms(10), Deadline: ms(30)}
	svc := uniform(20, ms(12)) // each batch 1.2 periods: backlog grows slowly
	res, err := Simulate(cfg, svc)
	if err != nil {
		t.Fatal(err)
	}
	// Batch i completes at 12(i+1) ms, arrives at 10i ms: sojourn 2i+12 ms,
	// within 30 ms for i <= 8, beyond for i >= 10.
	if res.OnTime == 0 || res.Missed == 0 {
		t.Fatalf("want a mix of on-time and missed: %+v", res)
	}
}

func TestExactBoundaryCompletionOnTime(t *testing.T) {
	// Sojourn exactly equal to the deadline counts as on time (miss is
	// strictly later than the bound).
	cfg := Config{Period: ms(10), Deadline: ms(10)}
	res, err := Simulate(cfg, uniform(5, ms(10)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Missed != 0 || res.OnTime != 5 {
		t.Fatalf("exact-boundary completions misclassified: %+v", res)
	}
}

// TestMissRateZeroBatches is the regression test for the zero-batch
// division guard: a Result that processed nothing (constructed directly,
// since Simulate refuses empty inputs) must report a 0 miss rate, not NaN.
func TestMissRateZeroBatches(t *testing.T) {
	var r Result
	if got := r.MissRate(); got != 0 {
		t.Fatalf("zero-batch MissRate = %v, want 0", got)
	}
	if got := (&Result{Dropped: 3, Missed: 2}).MissRate(); got != 0 {
		t.Fatalf("zero-batch MissRate with stale counters = %v, want 0", got)
	}
}

// TestObserverSeesEveryBatch: the observer fires once per arrival — drops
// included — in order, with event fields consistent with the aggregate
// Result.
func TestObserverSeesEveryBatch(t *testing.T) {
	var events []BatchEvent
	cfg := Config{
		Period:   ms(10),
		QueueCap: 1,
		Observer: func(e BatchEvent) { events = append(events, e) },
	}
	// 25 ms service over a 10 ms period with QueueCap 1: backlog builds, some
	// arrivals drop.
	res, err := Simulate(cfg, uniform(10, ms(25)))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != res.Batches {
		t.Fatalf("%d events for %d batches", len(events), res.Batches)
	}
	drops, completes := 0, 0
	for i, e := range events {
		if e.Index != i {
			t.Fatalf("event %d carries index %d", i, e.Index)
		}
		if e.Arrival != time.Duration(i)*cfg.Period {
			t.Fatalf("event %d arrival %v", i, e.Arrival)
		}
		if e.Dropped {
			drops++
			if e.Quality != "" || e.Start != 0 || e.Complete != 0 {
				t.Fatalf("dropped event %d has service fields: %+v", i, e)
			}
			continue
		}
		completes++
		if e.Start < e.Arrival || e.Complete <= e.Start {
			t.Fatalf("event %d timeline inverted: %+v", i, e)
		}
		if e.Quality != QualityExact {
			t.Fatalf("drop-only policy produced quality %q", e.Quality)
		}
	}
	if drops != res.Dropped {
		t.Fatalf("observer saw %d drops, result reports %d", drops, res.Dropped)
	}
	if completes != res.OnTime+res.Missed {
		t.Fatalf("observer saw %d completions, result reports %d", completes, res.OnTime+res.Missed)
	}
	if res.Dropped == 0 {
		t.Fatal("premise failed: no drops under a 1-deep queue at 2.5x overload")
	}
}

// TestObserverDegradedQuality: degraded service shows up in the events.
func TestObserverDegradedQuality(t *testing.T) {
	var got []string
	cfg := Config{
		Period:   ms(10),
		Policy:   Policy{Mode: ShedToLinear, LinearTime: ms(1)},
		Observer: func(e BatchEvent) { got = append(got, e.Quality) },
	}
	res, err := Simulate(cfg, uniform(8, ms(25)))
	if err != nil {
		t.Fatal(err)
	}
	fallbacks := 0
	for _, q := range got {
		if q == QualityFallback {
			fallbacks++
		}
	}
	if fallbacks != res.Quality[QualityFallback] || fallbacks == 0 {
		t.Fatalf("observer saw %d fallbacks, result %d", fallbacks, res.Quality[QualityFallback])
	}
}
