package stream

import (
	"testing"
	"time"
)

func ms(v float64) time.Duration { return time.Duration(v * float64(time.Millisecond)) }

func uniform(n int, v time.Duration) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestUnderloadedStreamAllOnTime(t *testing.T) {
	cfg := Config{Period: ms(10)}
	res, err := Simulate(cfg, uniform(100, ms(2)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Missed != 0 || res.Dropped != 0 || res.OnTime != 100 {
		t.Fatalf("underloaded stream missed: %+v", res)
	}
	if res.MeanSojourn != ms(2) || res.MaxSojourn != ms(2) {
		t.Fatalf("sojourn should equal service time: %+v", res)
	}
	if res.MaxBacklog != 1 {
		t.Fatalf("backlog %d, want 1 (only the in-service batch)", res.MaxBacklog)
	}
	if res.Utilization < 0.15 || res.Utilization > 0.25 {
		t.Fatalf("utilization %v, want ~0.2", res.Utilization)
	}
}

func TestOverloadedStreamCascades(t *testing.T) {
	// Service 12 ms > period 10 ms: every batch adds 2 ms of backlog, so
	// sojourns grow linearly and later batches miss by more and more.
	cfg := Config{Period: ms(10)}
	res, err := Simulate(cfg, uniform(50, ms(12)))
	if err != nil {
		t.Fatal(err)
	}
	if res.OnTime > 1 {
		t.Fatalf("overloaded stream should miss almost everything: %+v", res)
	}
	// Last sojourn ≈ 12 + 49·2 = 110 ms.
	if res.MaxSojourn < ms(100) {
		t.Fatalf("cascade too small: max sojourn %v", res.MaxSojourn)
	}
	if res.Utilization < 0.99 {
		t.Fatalf("overloaded utilization %v", res.Utilization)
	}
}

func TestSingleSlowBatchRecovers(t *testing.T) {
	// One pathological batch (25 ms) in an otherwise light stream: it and
	// its immediate successors miss, then the queue drains.
	svc := uniform(30, ms(2))
	svc[5] = ms(25)
	cfg := Config{Period: ms(10)}
	res, err := Simulate(cfg, svc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Missed == 0 {
		t.Fatal("pathological batch should miss")
	}
	if res.Missed > 3 {
		t.Fatalf("cascade should be short: %d missed", res.Missed)
	}
	if res.MissRate() >= 0.2 {
		t.Fatalf("miss rate %v too high", res.MissRate())
	}
}

func TestExplicitDeadline(t *testing.T) {
	cfg := Config{Period: ms(10), Deadline: ms(3)}
	res, err := Simulate(cfg, uniform(10, ms(5)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Missed != 10 {
		t.Fatalf("5 ms service vs 3 ms deadline: all should miss, got %+v", res)
	}
}

func TestQueueCapDrops(t *testing.T) {
	cfg := Config{Period: ms(10), QueueCap: 2}
	res, err := Simulate(cfg, uniform(40, ms(30)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatalf("bounded queue under overload must drop: %+v", res)
	}
	if res.Dropped+res.Missed+res.OnTime != res.Batches {
		t.Fatalf("accounting broken: %+v", res)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Simulate(Config{Period: 0}, uniform(1, ms(1))); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := Simulate(Config{Period: ms(10)}, nil); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := Simulate(Config{Period: ms(10)}, []time.Duration{-1}); err == nil {
		t.Error("negative service time accepted")
	}
	if _, err := Simulate(Config{Period: ms(10), Deadline: -ms(1)}, uniform(1, ms(1))); err == nil {
		t.Error("negative deadline accepted")
	}
}

func TestP99AboveMean(t *testing.T) {
	svc := uniform(200, ms(1))
	for i := 0; i < 200; i += 50 {
		svc[i] = ms(9)
	}
	res, err := Simulate(Config{Period: ms(10)}, svc)
	if err != nil {
		t.Fatal(err)
	}
	if res.P99Sojourn < res.MeanSojourn {
		t.Fatalf("p99 %v below mean %v", res.P99Sojourn, res.MeanSojourn)
	}
	if res.MaxSojourn < res.P99Sojourn {
		t.Fatalf("max %v below p99 %v", res.MaxSojourn, res.P99Sojourn)
	}
}

func TestMissRate(t *testing.T) {
	r := &Result{Batches: 10, Missed: 1, Dropped: 1}
	if r.MissRate() != 0.2 {
		t.Fatalf("miss rate %v", r.MissRate())
	}
	if (&Result{}).MissRate() != 0 {
		t.Fatal("empty miss rate")
	}
}
