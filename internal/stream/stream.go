// Package stream is a discrete-event simulator for the deployment scenario
// behind the paper's real-time constraint: decode batches arrive
// periodically (one per transmission time interval), are queued in front of
// a single decode engine, and each must finish within its deadline. The
// paper evaluates isolated batch decode times against a 10 ms bound; this
// simulator closes the loop — a decoder that occasionally exceeds the
// period doesn't just miss one deadline, it builds a backlog that cascades,
// which is why the tail of the decode-time distribution (not the mean)
// decides deployability.
package stream

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Config describes the arrival process and deadline.
type Config struct {
	// Period is the inter-arrival time of decode batches (one TTI).
	Period time.Duration
	// Deadline is the per-batch completion bound, measured from arrival.
	// Zero means Deadline == Period.
	Deadline time.Duration
	// QueueCap bounds the number of batches waiting (not yet started);
	// arrivals beyond it are dropped. Zero means unbounded.
	QueueCap int
}

// Result summarizes a simulated stream.
type Result struct {
	Batches int
	Dropped int
	Missed  int // completed after their deadline
	OnTime  int
	// Sojourn statistics over completed batches (queueing + service).
	MeanSojourn time.Duration
	P99Sojourn  time.Duration
	MaxSojourn  time.Duration
	MaxBacklog  int
	// Utilization is total service time / total simulated span.
	Utilization float64
}

// MissRate returns (dropped + missed) / batches.
func (r *Result) MissRate() float64 {
	if r.Batches == 0 {
		return 0
	}
	return float64(r.Dropped+r.Missed) / float64(r.Batches)
}

// Simulate runs the stream: batch i arrives at time i·Period and needs
// serviceTimes[i] of exclusive engine time, FIFO.
func Simulate(cfg Config, serviceTimes []time.Duration) (*Result, error) {
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("stream: non-positive period %v", cfg.Period)
	}
	if len(serviceTimes) == 0 {
		return nil, errors.New("stream: no batches")
	}
	deadline := cfg.Deadline
	if deadline == 0 {
		deadline = cfg.Period
	}
	if deadline < 0 {
		return nil, fmt.Errorf("stream: negative deadline %v", deadline)
	}

	res := &Result{Batches: len(serviceTimes)}
	var engineFree time.Duration // when the engine next becomes idle
	var totalService time.Duration
	sojourns := make([]time.Duration, 0, len(serviceTimes))
	var lastCompletion time.Duration

	for i, svc := range serviceTimes {
		if svc < 0 {
			return nil, fmt.Errorf("stream: negative service time for batch %d", i)
		}
		arrival := time.Duration(i) * cfg.Period
		// Backlog = batches that arrived but have not started by now.
		if cfg.QueueCap > 0 {
			backlog := 0
			// Count prior batches still pending at this arrival: the engine
			// is busy until engineFree; batches are FIFO so pending count is
			// derivable from completion times. Track via a simpler bound:
			// if the wait would exceed QueueCap periods, drop.
			waitPeriods := int((engineFree - arrival) / cfg.Period)
			if waitPeriods > 0 {
				backlog = waitPeriods
			}
			if backlog >= cfg.QueueCap {
				res.Dropped++
				continue
			}
		}
		start := arrival
		if engineFree > start {
			start = engineFree
		}
		complete := start + svc
		engineFree = complete
		totalService += svc
		lastCompletion = complete

		sojourn := complete - arrival
		sojourns = append(sojourns, sojourn)
		if sojourn > deadline {
			res.Missed++
		} else {
			res.OnTime++
		}
		if backlog := int((start - arrival) / cfg.Period); backlog+1 > res.MaxBacklog {
			res.MaxBacklog = backlog + 1
		}
	}

	if len(sojourns) > 0 {
		var sum time.Duration
		for _, s := range sojourns {
			sum += s
			if s > res.MaxSojourn {
				res.MaxSojourn = s
			}
		}
		res.MeanSojourn = sum / time.Duration(len(sojourns))
		sorted := append([]time.Duration(nil), sojourns...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		idx := len(sorted) * 99 / 100
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		res.P99Sojourn = sorted[idx]
	}
	span := lastCompletion
	if minSpan := time.Duration(len(serviceTimes)-1)*cfg.Period + 1; span < minSpan {
		span = minSpan
	}
	res.Utilization = float64(totalService) / float64(span)
	return res, nil
}
