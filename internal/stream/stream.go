// Package stream is a discrete-event simulator for the deployment scenario
// behind the paper's real-time constraint: decode batches arrive
// periodically (one per transmission time interval), are queued in front of
// a single decode engine, and each must finish within its deadline. The
// paper evaluates isolated batch decode times against a 10 ms bound; this
// simulator closes the loop — a decoder that occasionally exceeds the
// period doesn't just miss one deadline, it builds a backlog that cascades,
// which is why the tail of the decode-time distribution (not the mean)
// decides deployability.
package stream

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// PolicyMode selects how the engine reacts to backlog pressure.
type PolicyMode int

const (
	// DropOnly is the legacy behaviour: arrivals beyond QueueCap are
	// dropped, everything else is served at full quality.
	DropOnly PolicyMode = iota
	// ShrinkBudget serves backlogged batches with a shrunk decode budget:
	// service time scales by Policy.Shrink and the batch completes at
	// best-effort quality instead of queueing at full cost.
	ShrinkBudget
	// ShedToLinear serves backlogged batches with the linear fallback
	// detector (Policy.LinearTime of engine time, fallback quality).
	ShedToLinear
)

// String names the mode.
func (m PolicyMode) String() string {
	switch m {
	case DropOnly:
		return "drop-only"
	case ShrinkBudget:
		return "shrink-budget"
	case ShedToLinear:
		return "shed-to-linear"
	default:
		return fmt.Sprintf("PolicyMode(%d)", int(m))
	}
}

// Policy is the degradation policy applied under backlog: instead of letting
// queue overflow silently drop frames, the engine trades decode quality for
// service time once the backlog reaches a threshold. The zero value is
// DropOnly (no degradation), preserving the original simulator semantics.
type Policy struct {
	Mode PolicyMode
	// BacklogThreshold is the number of pending batches at which degradation
	// starts. Zero means 1 (degrade as soon as one batch is waiting).
	BacklogThreshold int
	// Shrink scales a degraded batch's service time in ShrinkBudget mode;
	// must be in (0, 1). Zero means 0.5.
	Shrink float64
	// LinearTime is the degraded service time in ShedToLinear mode; it
	// stands for the cost of a linear (ZF/Babai) decode of the batch.
	// Required (> 0) in that mode.
	LinearTime time.Duration
}

// Config describes the arrival process and deadline.
type Config struct {
	// Period is the inter-arrival time of decode batches (one TTI).
	Period time.Duration
	// Deadline is the per-batch completion bound, measured from arrival.
	// Zero means Deadline == Period.
	Deadline time.Duration
	// QueueCap bounds the number of batches waiting (not yet started);
	// arrivals beyond it are dropped. Zero means unbounded.
	QueueCap int
	// Policy is the backlog degradation policy (zero value: drop-only).
	Policy Policy
	// Observer, when non-nil, receives one BatchEvent per arriving batch —
	// drops included — in arrival order, as the simulation computes it. It
	// is the simulator's trace hook: the aggregate Result stays unchanged.
	Observer func(BatchEvent)
}

// BatchEvent is one batch's fate in the simulated timeline. All times are
// offsets from simulation start. For dropped batches Start/Complete are zero
// and Quality is empty.
type BatchEvent struct {
	Index    int
	Arrival  time.Duration
	Start    time.Duration
	Complete time.Duration
	Quality  string
	Dropped  bool
	// Backlog is the number of batches pending (arrived, not started) at
	// this batch's arrival — what the degradation policy saw.
	Backlog int
}

// Quality labels for Result.Quality, matching decoder.Quality.String().
const (
	QualityExact      = "exact"
	QualityBestEffort = "best-effort"
	QualityFallback   = "fallback"
)

// Result summarizes a simulated stream.
type Result struct {
	Batches int
	Dropped int
	Missed  int // completed after their deadline
	OnTime  int
	// Quality counts completed batches by decode quality: "exact" for full
	// service, "best-effort" for shrunk budgets, "fallback" for batches shed
	// to the linear decoder. Dropped batches do not appear (they produced
	// nothing).
	Quality map[string]int
	// Degraded is the number of completed batches below exact quality.
	Degraded int
	// Sojourn statistics over completed batches (queueing + service).
	MeanSojourn time.Duration
	P99Sojourn  time.Duration
	MaxSojourn  time.Duration
	MaxBacklog  int
	// Utilization is total service time / total simulated span.
	Utilization float64
}

// MissRate returns (dropped + missed) / batches.
func (r *Result) MissRate() float64 {
	if r.Batches == 0 {
		return 0
	}
	return float64(r.Dropped+r.Missed) / float64(r.Batches)
}

// Arrival is one batch in an explicit arrival sequence: it reaches the
// queue at Offset from simulation start and needs Service of exclusive
// engine time. Offsets must be non-decreasing (FIFO in arrival order);
// coincident offsets model a burst.
type Arrival struct {
	Offset  time.Duration
	Service time.Duration
}

// Simulate runs the stream: batch i arrives at time i·Period and needs
// serviceTimes[i] of exclusive engine time, FIFO.
func Simulate(cfg Config, serviceTimes []time.Duration) (*Result, error) {
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("stream: non-positive period %v", cfg.Period)
	}
	if len(serviceTimes) == 0 {
		return nil, errors.New("stream: no batches")
	}
	arrivals := make([]Arrival, len(serviceTimes))
	for i, svc := range serviceTimes {
		arrivals[i] = Arrival{Offset: time.Duration(i) * cfg.Period, Service: svc}
	}
	// The legacy periodic entry point keeps its original backlog estimate
	// (wait expressed in whole periods) so existing policy thresholds and
	// the tests that pin them are untouched.
	return simulate(cfg, arrivals, true)
}

// SimulateArrivals runs the stream over an explicit arrival sequence —
// the entry point for non-periodic workloads such as OFDM resource grids
// (a burst of Subcarriers×Symbols frames per coherence block) or bursty
// cell load. Unlike Simulate's periodic estimate, backlog here is the
// exact count of batches that have arrived but not started service.
// cfg.Period is optional; when zero, Deadline must be set explicitly.
func SimulateArrivals(cfg Config, arrivals []Arrival) (*Result, error) {
	if cfg.Period < 0 {
		return nil, fmt.Errorf("stream: negative period %v", cfg.Period)
	}
	if cfg.Period == 0 && cfg.Deadline <= 0 {
		return nil, errors.New("stream: arrivals need a positive Deadline when Period is zero")
	}
	if len(arrivals) == 0 {
		return nil, errors.New("stream: no batches")
	}
	for i, a := range arrivals {
		if a.Offset < 0 {
			return nil, fmt.Errorf("stream: negative arrival offset for batch %d", i)
		}
		if i > 0 && a.Offset < arrivals[i-1].Offset {
			return nil, fmt.Errorf("stream: arrival offsets not sorted at batch %d", i)
		}
	}
	return simulate(cfg, arrivals, false)
}

func simulate(cfg Config, arrivals []Arrival, legacyBacklog bool) (*Result, error) {
	deadline := cfg.Deadline
	if deadline == 0 {
		deadline = cfg.Period
	}
	if deadline < 0 {
		return nil, fmt.Errorf("stream: negative deadline %v", deadline)
	}
	pol := cfg.Policy
	switch pol.Mode {
	case DropOnly:
	case ShrinkBudget:
		if pol.Shrink == 0 {
			pol.Shrink = 0.5
		}
		if pol.Shrink <= 0 || pol.Shrink >= 1 {
			return nil, fmt.Errorf("stream: shrink factor %v outside (0, 1)", pol.Shrink)
		}
	case ShedToLinear:
		if pol.LinearTime <= 0 {
			return nil, fmt.Errorf("stream: shed-to-linear needs LinearTime > 0, got %v", pol.LinearTime)
		}
	default:
		return nil, fmt.Errorf("stream: unknown policy mode %v", pol.Mode)
	}
	if pol.BacklogThreshold == 0 {
		pol.BacklogThreshold = 1
	}
	if pol.BacklogThreshold < 0 {
		return nil, fmt.Errorf("stream: negative backlog threshold %d", pol.BacklogThreshold)
	}

	res := &Result{Batches: len(arrivals), Quality: map[string]int{}}
	var engineFree time.Duration // when the engine next becomes idle
	var totalService time.Duration
	sojourns := make([]time.Duration, 0, len(arrivals))
	var lastCompletion time.Duration
	// starts records the (non-decreasing) start times of batches already
	// dispatched, for the exact-backlog count in arrivals mode.
	var starts []time.Duration

	for i, ab := range arrivals {
		svc := ab.Service
		if svc < 0 {
			return nil, fmt.Errorf("stream: negative service time for batch %d", i)
		}
		arrival := ab.Offset
		backlog := 0
		if legacyBacklog {
			// Backlog = batches that arrived but have not started by now: the
			// engine is busy until engineFree and batches are FIFO, so the wait
			// expressed in periods bounds the pending count.
			if waitPeriods := int((engineFree - arrival) / cfg.Period); waitPeriods > 0 {
				backlog = waitPeriods
			}
		} else {
			// Exact pending count: dispatched batches whose service has not
			// begun by this arrival. Starts are non-decreasing, so scan back.
			for j := len(starts) - 1; j >= 0 && starts[j] > arrival; j-- {
				backlog++
			}
		}
		if cfg.QueueCap > 0 && backlog >= cfg.QueueCap {
			res.Dropped++
			if cfg.Observer != nil {
				cfg.Observer(BatchEvent{Index: i, Arrival: arrival, Dropped: true, Backlog: backlog})
			}
			continue
		}
		// Degradation policy: under backlog, trade quality for engine time
		// at dispatch instead of letting the queue cascade.
		quality := QualityExact
		if pol.Mode != DropOnly && backlog >= pol.BacklogThreshold {
			switch pol.Mode {
			case ShrinkBudget:
				svc = time.Duration(float64(svc) * pol.Shrink)
				quality = QualityBestEffort
			case ShedToLinear:
				if pol.LinearTime < svc {
					svc = pol.LinearTime
				}
				quality = QualityFallback
			}
		}
		start := arrival
		if engineFree > start {
			start = engineFree
		}
		complete := start + svc
		engineFree = complete
		totalService += svc
		lastCompletion = complete
		if !legacyBacklog {
			starts = append(starts, start)
		}

		sojourn := complete - arrival
		sojourns = append(sojourns, sojourn)
		if sojourn > deadline {
			res.Missed++
		} else {
			res.OnTime++
		}
		res.Quality[quality]++
		if quality != QualityExact {
			res.Degraded++
		}
		if cfg.Observer != nil {
			cfg.Observer(BatchEvent{
				Index: i, Arrival: arrival, Start: start, Complete: complete,
				Quality: quality, Backlog: backlog,
			})
		}
		if legacyBacklog {
			if backlog := int((start - arrival) / cfg.Period); backlog+1 > res.MaxBacklog {
				res.MaxBacklog = backlog + 1
			}
		} else if backlog+1 > res.MaxBacklog {
			res.MaxBacklog = backlog + 1
		}
	}

	if len(sojourns) > 0 {
		var sum time.Duration
		for _, s := range sojourns {
			sum += s
			if s > res.MaxSojourn {
				res.MaxSojourn = s
			}
		}
		res.MeanSojourn = sum / time.Duration(len(sojourns))
		sorted := append([]time.Duration(nil), sojourns...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		idx := len(sorted) * 99 / 100
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		res.P99Sojourn = sorted[idx]
	}
	span := lastCompletion
	minSpan := arrivals[len(arrivals)-1].Offset + 1
	if legacyBacklog {
		minSpan = time.Duration(len(arrivals)-1)*cfg.Period + 1
	}
	if span < minSpan {
		span = minSpan
	}
	res.Utilization = float64(totalService) / float64(span)
	return res, nil
}
