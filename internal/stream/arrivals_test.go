package stream

import (
	"reflect"
	"testing"
	"time"
)

// TestSimulateArrivalsMatchesPeriodicUnderload: feeding SimulateArrivals the
// same periodic sequence Simulate builds must reproduce Simulate's Result
// exactly when nothing queues — the two backlog definitions agree at zero.
func TestSimulateArrivalsMatchesPeriodicUnderload(t *testing.T) {
	cfg := Config{Period: 10 * time.Millisecond}
	svc := []time.Duration{
		4 * time.Millisecond, 7 * time.Millisecond, 2 * time.Millisecond,
		9 * time.Millisecond, 5 * time.Millisecond,
	}
	want, err := Simulate(cfg, svc)
	if err != nil {
		t.Fatal(err)
	}
	arrivals := make([]Arrival, len(svc))
	for i, s := range svc {
		arrivals[i] = Arrival{Offset: time.Duration(i) * cfg.Period, Service: s}
	}
	got, err := SimulateArrivals(cfg, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("underload divergence:\n got %+v\nwant %+v", got, want)
	}
}

// TestSimulateArrivalsBurstBacklog: a burst of coincident arrivals serialises
// on the engine; the exact backlog counts batches dispatched but not yet
// started, so it climbs one per queued batch.
func TestSimulateArrivalsBurstBacklog(t *testing.T) {
	cfg := Config{Deadline: 15 * time.Millisecond}
	burst := []Arrival{
		{Offset: 0, Service: 10 * time.Millisecond},
		{Offset: 0, Service: 10 * time.Millisecond},
		{Offset: 0, Service: 10 * time.Millisecond},
		{Offset: 0, Service: 10 * time.Millisecond},
	}
	var events []BatchEvent
	cfg.Observer = func(e BatchEvent) { events = append(events, e) }
	res, err := SimulateArrivals(cfg, burst)
	if err != nil {
		t.Fatal(err)
	}
	// Batch 0 starts at its own arrival, so it is never "pending" for the
	// rest of the burst; batches 1..3 see 0, 1, 2 pending respectively.
	wantBacklogs := []int{0, 0, 1, 2}
	for i, e := range events {
		if e.Backlog != wantBacklogs[i] {
			t.Errorf("batch %d saw backlog %d, want %d", i, e.Backlog, wantBacklogs[i])
		}
	}
	if res.MaxBacklog != 3 {
		t.Errorf("MaxBacklog = %d, want 3", res.MaxBacklog)
	}
	// Sojourns 10/20/30/40 ms against a 15 ms deadline.
	if res.OnTime != 1 || res.Missed != 3 {
		t.Errorf("on-time %d missed %d, want 1/3", res.OnTime, res.Missed)
	}
	if res.MaxSojourn != 40*time.Millisecond {
		t.Errorf("MaxSojourn = %v, want 40ms", res.MaxSojourn)
	}
	// Engine never idles: utilization = 40ms service / 40ms span.
	if res.Utilization != 1 {
		t.Errorf("Utilization = %v, want 1", res.Utilization)
	}
}

// TestSimulateArrivalsQueueCap: the cap applies to the exact pending count.
func TestSimulateArrivalsQueueCap(t *testing.T) {
	cfg := Config{Deadline: time.Second, QueueCap: 2}
	burst := make([]Arrival, 5)
	for i := range burst {
		burst[i] = Arrival{Offset: 0, Service: 10 * time.Millisecond}
	}
	res, err := SimulateArrivals(cfg, burst)
	if err != nil {
		t.Fatal(err)
	}
	// Backlogs 0,0,1,2,2: the last two hit the cap.
	if res.Dropped != 2 || res.Batches != 5 {
		t.Errorf("dropped %d of %d, want 2 of 5", res.Dropped, res.Batches)
	}
}

// TestSimulateArrivalsShedPolicy: degradation triggers off the exact backlog.
func TestSimulateArrivalsShedPolicy(t *testing.T) {
	cfg := Config{
		Deadline: 25 * time.Millisecond,
		Policy:   Policy{Mode: ShedToLinear, LinearTime: 2 * time.Millisecond},
	}
	burst := make([]Arrival, 4)
	for i := range burst {
		burst[i] = Arrival{Offset: 0, Service: 10 * time.Millisecond}
	}
	res, err := SimulateArrivals(cfg, burst)
	if err != nil {
		t.Fatal(err)
	}
	// Batches 0 and 1 see no pending batch (both start-at-arrival and
	// start-at-engine-free), batches 2 and 3 shed to the 2 ms linear decode.
	if res.Quality[QualityExact] != 2 || res.Quality[QualityFallback] != 2 {
		t.Errorf("quality mix %v, want 2 exact + 2 fallback", res.Quality)
	}
	if res.Degraded != 2 {
		t.Errorf("Degraded = %d, want 2", res.Degraded)
	}
	// Timeline 0-10, 10-20, 20-22, 22-24: everything inside 25 ms.
	if res.Missed != 0 {
		t.Errorf("Missed = %d, want 0", res.Missed)
	}
	if res.MaxSojourn != 24*time.Millisecond {
		t.Errorf("MaxSojourn = %v, want 24ms", res.MaxSojourn)
	}
}

func TestSimulateArrivalsValidation(t *testing.T) {
	ok := []Arrival{{Offset: 0, Service: time.Millisecond}}
	for name, tc := range map[string]struct {
		cfg Config
		arr []Arrival
	}{
		"no deadline without period": {Config{}, ok},
		"negative period":            {Config{Period: -1}, ok},
		"empty":                      {Config{Deadline: time.Second}, nil},
		"negative offset": {Config{Deadline: time.Second},
			[]Arrival{{Offset: -time.Millisecond, Service: time.Millisecond}}},
		"unsorted": {Config{Deadline: time.Second}, []Arrival{
			{Offset: time.Millisecond, Service: time.Millisecond},
			{Offset: 0, Service: time.Millisecond}}},
		"negative service": {Config{Deadline: time.Second},
			[]Arrival{{Offset: 0, Service: -time.Millisecond}}},
	} {
		if _, err := SimulateArrivals(tc.cfg, tc.arr); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}

	// Period alone (no explicit deadline) is fine: deadline defaults to it.
	res, err := SimulateArrivals(Config{Period: time.Millisecond}, ok)
	if err != nil {
		t.Fatal(err)
	}
	if res.OnTime != 1 {
		t.Errorf("period-default deadline: on-time %d, want 1", res.OnTime)
	}
}
