package resilience

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for breaker/restart tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(threshold int, base, cap time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{
		FailureThreshold: threshold,
		CooldownBase:     base,
		CooldownCap:      cap,
		now:              clk.now,
	})
	return b, clk
}

func TestBreakerLifecycle(t *testing.T) {
	b, clk := newTestBreaker(3, 100*time.Millisecond, time.Second)
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("initial state %v", st)
	}
	// Failures below threshold keep it closed; a success resets the count.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state %v after interrupted failure run, want closed", st)
	}
	// Third consecutive failure trips it.
	b.Failure()
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state %v after threshold failures, want open", st)
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	// After the cooldown (cap bounds it at 1s) the next Allow is the probe.
	clk.advance(time.Second)
	ok, probe := b.Allow()
	if !ok || !probe {
		t.Fatalf("Allow after cooldown = (%v, %v), want probe admission", ok, probe)
	}
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("state %v during probe, want half-open", st)
	}
	// While the probe is in flight everything else is short-circuited.
	if ok, _ := b.Allow(); ok {
		t.Fatal("half-open breaker admitted a second call during the probe")
	}
	// Probe failure re-opens; probe success after another cooldown closes.
	b.Failure()
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state %v after probe failure, want open", st)
	}
	clk.advance(time.Second)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatal("no second probe after re-open cooldown")
	}
	b.Success()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state %v after probe success, want closed", st)
	}
	c := b.Counters()
	if c.Opened != 2 || c.Probes != 2 || c.Reclosed != 1 || c.ShortCircuited != 2 {
		t.Fatalf("counters %+v", c)
	}
}

// TestBreakerJitterBounds: every open dwell must lie in [base, cap], and
// repeated re-opens must not exceed the cap (decorrelated jitter growth is
// bounded).
func TestBreakerJitterBounds(t *testing.T) {
	base, cap := 10*time.Millisecond, 80*time.Millisecond
	b, clk := newTestBreaker(1, base, cap)
	for i := 0; i < 50; i++ {
		b.Failure() // trips (threshold 1) or fails the probe
		b.mu.Lock()
		d := b.cooldown
		b.mu.Unlock()
		if d < base || d > cap {
			t.Fatalf("re-open %d: cooldown %v outside [%v, %v]", i, d, base, cap)
		}
		clk.advance(cap)
		if ok, probe := b.Allow(); !ok || !probe {
			t.Fatalf("re-open %d: no probe after cap dwell", i)
		}
	}
}

func TestBreakerConcurrentProbeExclusive(t *testing.T) {
	b, clk := newTestBreaker(1, time.Millisecond, time.Millisecond)
	b.Failure()
	clk.advance(time.Millisecond)
	var probes int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if ok, probe := b.Allow(); ok && probe {
				mu.Lock()
				probes++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if probes != 1 {
		t.Fatalf("%d concurrent probes admitted, want exactly 1", probes)
	}
}

func TestBreakerStateRoundTrip(t *testing.T) {
	for _, st := range []BreakerState{BreakerClosed, BreakerOpen, BreakerHalfOpen} {
		got, err := ParseBreakerState(st.String())
		if err != nil || got != st {
			t.Errorf("ParseBreakerState(%q) = %v, %v", st.String(), got, err)
		}
	}
	if s := BreakerState(42).String(); s != "BreakerState(42)" {
		t.Errorf("unknown state renders %q", s)
	}
	if _, err := ParseBreakerState("ajar"); err == nil {
		t.Error("ParseBreakerState accepted garbage")
	}
}

func TestRecover(t *testing.T) {
	if err := Recover(func() error { return nil }); err != nil {
		t.Fatalf("clean call: %v", err)
	}
	sentinel := errors.New("boom")
	if err := Recover(func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("error passthrough: %v", err)
	}
	err := Recover(func() error { panic("injected crash") })
	if !errors.Is(err, ErrWorkerPanic) {
		t.Fatalf("panic not typed: %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic not a *PanicError: %T", err)
	}
	if fmt.Sprint(pe.Value) != "injected crash" {
		t.Fatalf("panic value %v", pe.Value)
	}
	if !bytes.Contains(pe.Stack, []byte("resilience_test.go")) {
		t.Fatalf("stack does not name the panic site:\n%s", pe.Stack)
	}
}

func TestRestartBudget(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	rb := NewRestartBudget(2, time.Minute)
	rb.now = clk.now
	if !rb.AllowRestart() || !rb.AllowRestart() {
		t.Fatal("budget refused restarts inside the allowance")
	}
	if rb.AllowRestart() {
		t.Fatal("budget allowed a third restart inside the window")
	}
	// Old crashes age out of the sliding window.
	clk.advance(2 * time.Minute)
	if !rb.AllowRestart() {
		t.Fatal("budget refused a restart after the window slid")
	}
}

func TestTransientClassification(t *testing.T) {
	if Transient(nil) {
		t.Error("nil is transient")
	}
	if Transient(errors.New("plain")) {
		t.Error("plain error is transient")
	}
	if !Transient(fmt.Errorf("glitch: %w", ErrTransient)) {
		t.Error("wrapped ErrTransient not transient")
	}
	if !Transient(transientish{}) {
		t.Error("Transient() bool interface not honoured")
	}
}

type transientish struct{}

func (transientish) Error() string   { return "transientish" }
func (transientish) Transient() bool { return true }

func TestBudget(t *testing.T) {
	b := NewBudget(0.5, 2) // starts full: 2 tokens banked
	if !b.Spend() || !b.Spend() {
		t.Fatal("full budget refused its burst")
	}
	if b.Spend() {
		t.Fatal("empty budget granted a token")
	}
	b.Earn(1) // +0.5 — still below one token
	if b.Spend() {
		t.Fatal("half a token spent")
	}
	b.Earn(1) // 1.0
	if !b.Spend() {
		t.Fatal("earned token refused")
	}
	b.Earn(1000) // capped at burst
	if !b.Spend() || !b.Spend() {
		t.Fatal("burst cap not reachable")
	}
	if b.Spend() {
		t.Fatal("cap exceeded")
	}
	// Disabled budgets never grant; nil receivers are safe no-ops.
	off := NewBudget(0, 5)
	if off.Spend() {
		t.Fatal("disabled budget granted a token")
	}
	var nilBudget *Budget
	nilBudget.Earn(3)
	if nilBudget.Spend() {
		t.Fatal("nil budget granted a token")
	}
}

func TestBackoffBounds(t *testing.T) {
	base, cap := time.Millisecond, 8*time.Millisecond
	b := NewBackoff(base, cap, 7)
	for attempt := 0; attempt < 70; attempt++ { // high attempts exercise shift overflow
		d := b.Delay(attempt)
		ceil := cap
		if attempt < 3 { // 1ms<<3 = 8ms = cap
			ceil = base << uint(attempt)
		}
		if d < 0 || d > ceil {
			t.Fatalf("attempt %d: delay %v outside [0, %v]", attempt, d, ceil)
		}
	}
}
