package resilience

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBreakerHalfOpenSingleProbeExclusivity hammers Allow from many
// goroutines against a breaker whose cooldown has elapsed and asserts the
// half-open contract under contention: at any instant at most ONE admitted,
// unresolved probe exists. Every admitted probe is resolved (randomly
// success or failure) after a tracked critical section; a second concurrent
// probe admission inside that section is the exact bug the breaker's
// probing flag exists to prevent, because two probes mean the backend takes
// double the traffic it was promised while half-open.
func TestBreakerHalfOpenSingleProbeExclusivity(t *testing.T) {
	var fake atomic.Int64 // fake clock, ns
	cfg := BreakerConfig{
		FailureThreshold: 1,
		CooldownBase:     time.Millisecond,
		CooldownCap:      time.Millisecond,
		now:              func() time.Time { return time.Unix(0, fake.Load()) },
	}
	b := NewBreaker(cfg)
	b.Failure() // trip it
	if b.State() != BreakerOpen {
		t.Fatal("breaker not open after threshold failures")
	}

	var (
		inProbe    atomic.Int64 // unresolved admitted probes right now
		maxProbe   atomic.Int64 // high-water mark — must never exceed 1
		probes     atomic.Int64
		nonProbeOK atomic.Int64
	)
	const goroutines = 16
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// March the fake clock past the cooldown so open states keep
				// converting into probe opportunities throughout the hammer.
				fake.Add(int64(100 * time.Microsecond))
				ok, probe := b.Allow()
				if !ok {
					continue
				}
				if !probe {
					// Closed-state admission: resolve as a success (keeps the
					// breaker cycling between closed and open via the
					// occasional failure below).
					nonProbeOK.Add(1)
					if i%7 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
					continue
				}
				probes.Add(1)
				cur := inProbe.Add(1)
				for {
					m := maxProbe.Load()
					if cur <= m || maxProbe.CompareAndSwap(m, cur) {
						break
					}
				}
				// Stretch the probe's critical section so a buggy breaker
				// would have ample room to admit a second probe.
				for spin := 0; spin < 50; spin++ {
					fake.Add(int64(time.Millisecond))
					if ok2, probe2 := b.Allow(); ok2 && probe2 {
						t.Errorf("second probe admitted while one was unresolved")
					} else if ok2 {
						t.Errorf("non-probe traffic admitted while half-open")
					}
				}
				inProbe.Add(-1)
				if i%2 == 0 {
					b.Success()
				} else {
					b.Failure()
				}
			}
		}(g)
	}
	wg.Wait()

	if got := maxProbe.Load(); got > 1 {
		t.Fatalf("probe concurrency high-water mark %d, want at most 1", got)
	}
	if probes.Load() == 0 {
		t.Fatal("hammer never admitted a probe — the scenario did not exercise half-open")
	}
	c := b.Counters()
	if c.Probes == 0 || c.ShortCircuited == 0 {
		t.Fatalf("counters show no contention: %+v", c)
	}
}

// TestBreakerProbeHandoff: when a probe resolves while the breaker is
// half-open, the next Allow must become the new probe — the probing flag
// must hand over cleanly rather than wedge the breaker half-open forever.
func TestBreakerProbeHandoff(t *testing.T) {
	var fake atomic.Int64
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1,
		CooldownBase:     time.Millisecond,
		CooldownCap:      time.Millisecond,
		now:              func() time.Time { return time.Unix(0, fake.Load()) },
	})
	b.Failure()
	fake.Add(int64(2 * time.Millisecond))
	ok, probe := b.Allow()
	if !ok || !probe {
		t.Fatalf("Allow after cooldown = (%v, %v), want probe admission", ok, probe)
	}
	b.Failure() // probe fails: re-open with longer cooldown
	if b.State() != BreakerOpen {
		t.Fatal("breaker not re-open after failed probe")
	}
	fake.Add(int64(10 * time.Millisecond))
	ok, probe = b.Allow()
	if !ok || !probe {
		t.Fatalf("no fresh probe after re-open cooldown: (%v, %v)", ok, probe)
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("breaker not closed after successful probe")
	}
	if c := b.Counters(); c.Reclosed != 1 || c.Probes != 2 {
		t.Fatalf("counters %+v, want 2 probes and 1 reclose", c)
	}
}
