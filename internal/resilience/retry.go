package resilience

import (
	"errors"
	"math"
	"sync"
	"time"

	"repro/internal/rng"
)

// ErrTransient marks an error worth retrying: the same call may well succeed
// a moment later (a glitched transfer, a momentarily wedged queue). Producers
// wrap with fmt.Errorf("...: %w", resilience.ErrTransient) or implement
// interface{ Transient() bool }; consumers test with Transient.
var ErrTransient = errors.New("resilience: transient fault")

// Transient reports whether err is worth retrying: it wraps ErrTransient or
// some error in its chain implements interface{ Transient() bool }.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrTransient) {
		return true
	}
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// Budget is a token bucket bounding how much *extra* work (retries, hedges)
// the layer may add on top of the primary load, so a fault storm degrades
// into sheds instead of amplifying itself: each primary operation earns Ratio
// tokens (capped at Burst), each retry or hedge spends one. Safe for
// concurrent use.
type Budget struct {
	mu     sync.Mutex
	ratio  float64
	burst  float64
	tokens float64
}

// NewBudget builds a budget that allows ratio extra operations per primary
// operation, with at most burst banked. A non-positive ratio disables the
// budget (Spend always fails); a non-positive burst defaults to 10. The
// bucket starts full so cold-start faults can still retry.
func NewBudget(ratio, burst float64) *Budget {
	if burst <= 0 {
		burst = 10
	}
	return &Budget{ratio: ratio, burst: burst, tokens: burst}
}

// Earn credits n primary operations.
func (b *Budget) Earn(n int) {
	if b == nil || b.ratio <= 0 {
		return
	}
	b.mu.Lock()
	b.tokens = math.Min(b.burst, b.tokens+float64(n)*b.ratio)
	b.mu.Unlock()
}

// Spend takes one token; false means the budget is exhausted and the caller
// must not add the extra operation.
func (b *Budget) Spend() bool {
	if b == nil || b.ratio <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Backoff generates full-jitter exponential delays: attempt k (0-based)
// sleeps uniform(0, min(Cap, Base·2^k)). The jitter stream is deterministic
// per Backoff value. Safe for concurrent use.
type Backoff struct {
	Base time.Duration
	Cap  time.Duration

	mu     sync.Mutex
	jitter *rng.Rand
}

// NewBackoff builds a backoff; non-positive base defaults to 1ms, cap to
// 100ms.
func NewBackoff(base, cap time.Duration, seed uint64) *Backoff {
	if base <= 0 {
		base = time.Millisecond
	}
	if cap <= 0 {
		cap = 100 * time.Millisecond
	}
	if cap < base {
		cap = base
	}
	return &Backoff{Base: base, Cap: cap, jitter: rng.New(seed)}
}

// Delay returns the sleep before retry attempt k (0-based).
func (b *Backoff) Delay(attempt int) time.Duration {
	ceil := b.Base << uint(attempt)
	if ceil > b.Cap || ceil <= 0 { // <= 0 guards shift overflow
		ceil = b.Cap
	}
	b.mu.Lock()
	f := b.jitter.Float64()
	b.mu.Unlock()
	return time.Duration(f * float64(ceil))
}
