package resilience

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// ErrWorkerPanic marks an error recovered from a panicking worker. Test with
// errors.Is; the concrete *PanicError carries the panic value and stack.
var ErrWorkerPanic = errors.New("resilience: worker panic")

// PanicError is a recovered panic as a typed error: the panic value plus the
// goroutine stack captured at the recovery point, so a supervised crash is
// debuggable without taking the process down.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("resilience: worker panic: %v", e.Value)
}

// Unwrap lets errors.Is(err, ErrWorkerPanic) match.
func (e *PanicError) Unwrap() error { return ErrWorkerPanic }

// Recover runs f under a recovery barrier: a panic becomes a *PanicError
// (stack captured), any ordinary error passes through unchanged.
func Recover(f func() error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	return f()
}

// RestartBudget decides between restarting a crashed worker and quarantining
// its backend: up to Max restarts are allowed within a sliding Window; one
// more inside the window means the fault is not transient and the backend is
// quarantined. Safe for concurrent use.
type RestartBudget struct {
	// Max is the restart allowance per window. Default 3.
	Max int
	// Window is the sliding interval restarts are counted over. Default 30s.
	Window time.Duration

	mu     sync.Mutex
	stamps []time.Time
	now    func() time.Time // test hook
}

// NewRestartBudget builds a budget; zero arguments select the defaults.
func NewRestartBudget(max int, window time.Duration) *RestartBudget {
	if max <= 0 {
		max = 3
	}
	if window <= 0 {
		window = 30 * time.Second
	}
	return &RestartBudget{Max: max, Window: window, now: time.Now}
}

// AllowRestart records one crash and reports whether the worker may restart
// (false means: quarantine).
func (r *RestartBudget) AllowRestart() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	cutoff := now.Add(-r.Window)
	kept := r.stamps[:0]
	for _, t := range r.stamps {
		if t.After(cutoff) {
			kept = append(kept, t)
		}
	}
	r.stamps = kept
	if len(r.stamps) >= r.Max {
		return false
	}
	r.stamps = append(r.stamps, now)
	return true
}
