// Package resilience supplies the self-healing primitives the serving layer
// composes around its decode workers: a per-backend circuit breaker, panic
// recovery into typed errors with captured stacks, restart/quarantine
// budgets, and token budgets for retries and hedged requests.
//
// The design philosophy mirrors the fixed-complexity detectors the paper's
// related work trades exactness for: bounded failure domains and predictable
// degradation beat occasional perfection. A broken accelerator must cost the
// node one worker's throughput, never the process; a fault storm must cost a
// bounded number of retries, never an amplified one.
//
// Everything here is deliberately free of serving-layer types so the same
// primitives can guard any backend-shaped dependency.
package resilience

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/rng"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes traffic through and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails fast: traffic is routed around the backend until a
	// jittered cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits exactly one probe; its outcome decides between
	// closing again and re-opening with a longer cooldown.
	BreakerHalfOpen
)

// String names the state as used in health reports and metrics.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// ParseBreakerState is the inverse of String.
func ParseBreakerState(s string) (BreakerState, error) {
	switch s {
	case "closed":
		return BreakerClosed, nil
	case "open":
		return BreakerOpen, nil
	case "half-open":
		return BreakerHalfOpen, nil
	default:
		return 0, fmt.Errorf("resilience: unknown breaker state %q (want closed, open, half-open)", s)
	}
}

// BreakerConfig tunes a Breaker. The zero value is usable: defaults fill in.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that trips a closed
	// breaker open. Default 5.
	FailureThreshold int
	// CooldownBase is the minimum open dwell before a half-open probe.
	// Default 100ms.
	CooldownBase time.Duration
	// CooldownCap bounds the decorrelated-jitter growth of repeated
	// re-opens. Default 5s.
	CooldownCap time.Duration
	// Seed drives the jitter stream (deterministic per breaker). Zero is a
	// valid seed.
	Seed uint64
	// now overrides time.Now in tests.
	now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.CooldownBase <= 0 {
		c.CooldownBase = 100 * time.Millisecond
	}
	if c.CooldownCap <= 0 {
		c.CooldownCap = 5 * time.Second
	}
	if c.CooldownCap < c.CooldownBase {
		c.CooldownCap = c.CooldownBase
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// BreakerCounters is a snapshot of a breaker's transition history.
type BreakerCounters struct {
	// Opened counts closed→open and half-open→open trips.
	Opened uint64 `json:"opened"`
	// Probes counts open→half-open transitions (probe admissions).
	Probes uint64 `json:"probes"`
	// Reclosed counts half-open→closed recoveries.
	Reclosed uint64 `json:"reclosed"`
	// ShortCircuited counts calls refused while open (or while a half-open
	// probe was already in flight).
	ShortCircuited uint64 `json:"short_circuited"`
}

// Breaker is a three-state circuit breaker with decorrelated-jitter
// cooldowns. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     BreakerState
	failures  int           // consecutive failures while closed
	openedAt  time.Time     // when the breaker last opened
	cooldown  time.Duration // current open dwell
	prevSleep time.Duration // decorrelated-jitter state
	probing   bool          // a half-open probe is in flight
	jitter    *rng.Rand
	counters  BreakerCounters
}

// NewBreaker builds a breaker in the closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, jitter: rng.New(cfg.Seed), prevSleep: cfg.CooldownBase}
}

// Allow reports whether a call may proceed. probe is true when the admitted
// call is the half-open probe whose outcome decides the breaker's fate — the
// caller MUST report it via Success or Failure, or the breaker stays
// half-open forever.
func (b *Breaker) Allow() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if b.cfg.now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			b.probing = true
			b.counters.Probes++
			return true, true
		}
		b.counters.ShortCircuited++
		return false, false
	default: // BreakerHalfOpen
		if !b.probing {
			// The probe resolved between the state read and now; admit the
			// next caller as a fresh probe.
			b.probing = true
			b.counters.Probes++
			return true, true
		}
		b.counters.ShortCircuited++
		return false, false
	}
}

// Success records a successful call. A half-open probe success closes the
// breaker and resets the jitter growth.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures = 0
	case BreakerHalfOpen:
		b.state = BreakerClosed
		b.failures = 0
		b.probing = false
		b.prevSleep = b.cfg.CooldownBase
		b.counters.Reclosed++
	}
}

// Failure records a failed call. Enough consecutive closed-state failures
// trip the breaker; a half-open probe failure re-opens it with a longer,
// decorrelated-jittered cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	case BreakerHalfOpen:
		b.probing = false
		b.trip()
	}
}

// trip moves to open with the next decorrelated-jitter cooldown:
// sleep = min(cap, uniform(base, 3·prevSleep)). Callers hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.cfg.now()
	b.failures = 0
	lo, hi := b.cfg.CooldownBase, 3*b.prevSleep
	if hi < lo {
		hi = lo
	}
	d := lo + time.Duration(b.jitter.Float64()*float64(hi-lo))
	if d > b.cfg.CooldownCap {
		d = b.cfg.CooldownCap
	}
	b.cooldown = d
	b.prevSleep = d
	b.counters.Opened++
}

// State returns the breaker's current position. An open breaker whose
// cooldown has elapsed still reports open until the next Allow admits the
// probe.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Counters returns a snapshot of the transition history.
func (b *Breaker) Counters() BreakerCounters {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.counters
}
