package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// deterministicFrame builds a fully-populated frame with fixed values, so its
// serialized form is stable across runs (the golden-file requirement).
func deterministicFrame() *Frame {
	st := &SearchTrace{
		M:               3,
		Alphabet:        4,
		InitialRadiusSq: math.Inf(1),
		FinalRadiusSq:   2.5,
		Retries:         1,
		DegradedBy:      "node-budget",
		Levels: []LevelStats{
			{Visits: 1, Pruned: 0, Kept: 4},
			{Visits: 4, Pruned: 6, Kept: 10},
			{Visits: 7, Pruned: 20, Kept: 8},
			{Visits: 0, Pruned: 0, Kept: 0},
		},
		Radius: []RadiusPoint{
			{T: 1500 * time.Nanosecond, RadiusSq: 9.25},
			{T: 4200 * time.Nanosecond, RadiusSq: 2.5},
		},
		Duration: 7 * time.Microsecond,
	}
	f := NewFrame(st, "sim")
	f.FrameID = 42
	f.Quality = "best_effort"
	bt := &BatchTrace{Batch: Span{ID: 100, Name: "batch",
		Start: time.Unix(1700000000, 0).UTC(), End: time.Unix(1700000000, 5000).UTC()}}
	bt.Spans = []Span{
		{ID: 101, Parent: 100, Name: "queue-wait",
			Start: time.Unix(1700000000, 0).UTC(), End: time.Unix(1700000000, 1000).UTC()},
		{ID: 102, Parent: 100, Name: "search",
			Start: time.Unix(1700000000, 1000).UTC(), End: time.Unix(1700000000, 4000).UTC()},
	}
	f.AttachBatch(bt, 8)
	return f
}

// TestFrameGolden pins the wire schema: the serialized frame must match the
// checked-in golden line byte for byte, and the golden line must satisfy
// ValidateFrame. Regenerate with -update when the schema deliberately
// changes (and bump SchemaVersion when it does).
func TestFrameGolden(t *testing.T) {
	line, err := deterministicFrame().MarshalLine()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "frame.golden.jsonl")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, append(line, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	want = bytes.TrimRight(want, "\n")
	if !bytes.Equal(line, want) {
		t.Fatalf("frame serialization drifted from golden\n got: %s\nwant: %s", line, want)
	}
	if _, err := ValidateFrame(want); err != nil {
		t.Fatalf("golden line fails its own validator: %v", err)
	}
}

// TestFrameFieldPresence asserts the required keys exist on the wire — a
// schema consumer contract independent of Go struct names.
func TestFrameFieldPresence(t *testing.T) {
	line, err := deterministicFrame().MarshalLine()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(line, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"schema", "frame_id", "source", "m", "alphabet", "quality",
		"degraded_by", "nodes_visited", "full_tree_nodes",
		"initial_radius_sq", "final_radius_sq", "retries", "search_ns",
		"levels", "radius", "batch_span_id", "batch_size", "spans",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("wire frame lacks %q", key)
		}
	}
	lv, ok := m["levels"].([]any)
	if !ok || len(lv) != 4 {
		t.Fatalf("levels: %v", m["levels"])
	}
	l0 := lv[0].(map[string]any)
	for _, key := range []string{"depth", "visits", "pruned", "kept", "full_width"} {
		if _, ok := l0[key]; !ok {
			t.Errorf("level entry lacks %q", key)
		}
	}
}

// TestFrameRoundTrip: marshal → validate → marshal must be a fixed point.
func TestFrameRoundTrip(t *testing.T) {
	f := deterministicFrame()
	line, err := f.MarshalLine()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ValidateFrame(line)
	if err != nil {
		t.Fatal(err)
	}
	line2, err := got.MarshalLine()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(line, line2) {
		t.Fatalf("round trip not stable:\n %s\n %s", line, line2)
	}
	if got.NodesVisited != 12 || got.FullTreeNodes != 1+4+16+64 {
		t.Fatalf("decoded frame: visits %d, full tree %v", got.NodesVisited, got.FullTreeNodes)
	}
	if got.InitialRadiusSq != -1 {
		t.Fatalf("+Inf initial radius should wire as -1, got %v", got.InitialRadiusSq)
	}
}

// TestValidateFrameRejects covers the rejection paths: wrong schema, unknown
// fields, level miscounts, and the visit-sum cross-check.
func TestValidateFrameRejects(t *testing.T) {
	base := deterministicFrame()
	mutate := func(fn func(m map[string]any)) []byte {
		line, _ := base.MarshalLine()
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatal(err)
		}
		fn(m)
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	cases := []struct {
		name string
		line []byte
	}{
		{"not json", []byte("{nope")},
		{"wrong schema", mutate(func(m map[string]any) { m["schema"] = "mimosd.trace.v0" })},
		{"unknown field", mutate(func(m map[string]any) { m["surprise"] = 1 })},
		{"missing quality", mutate(func(m map[string]any) { delete(m, "quality") })},
		{"level count", mutate(func(m map[string]any) { m["levels"] = m["levels"].([]any)[:2] })},
		{"visit sum", mutate(func(m map[string]any) { m["nodes_visited"] = 99 })},
		{"bad shape", mutate(func(m map[string]any) { m["m"] = 0 })},
	}
	for _, tc := range cases {
		if _, err := ValidateFrame(tc.line); err == nil {
			t.Errorf("%s: validator accepted a bad frame", tc.name)
		}
	}
}

// TestSearchTraceReuse: SearchStart must fully reset a reused trace.
func TestSearchTraceReuse(t *testing.T) {
	st := NewSearchTrace()
	st.SearchStart(4, 4, math.Inf(1))
	st.NodeExpanded(0)
	st.Children(1, 2, 2)
	st.RadiusUpdate(5)
	st.Degraded("deadline")
	st.SearchEnd(5, 0)
	if st.NodesVisited() != 1 || st.ChildrenPruned() != 2 {
		t.Fatalf("first attempt tallies wrong: %d/%d", st.NodesVisited(), st.ChildrenPruned())
	}
	st.SearchStart(3, 2, 7)
	if st.NodesVisited() != 0 || st.ChildrenPruned() != 0 {
		t.Fatal("SearchStart did not reset tallies")
	}
	if len(st.Levels) != 4 || len(st.Radius) != 0 || st.DegradedBy != "" {
		t.Fatalf("stale state after reset: %d levels, %d radius points, degraded %q",
			len(st.Levels), len(st.Radius), st.DegradedBy)
	}
	if st.InitialRadiusSq != 7 {
		t.Fatalf("initial radius %v", st.InitialRadiusSq)
	}
}

// TestSpanIDsUnique: span IDs must be process-unique and nonzero (zero is
// the "no parent" sentinel).
func TestSpanIDsUnique(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := NewSpanID()
		if id == 0 {
			t.Fatal("span ID 0 collides with the root sentinel")
		}
		if seen[id] {
			t.Fatalf("duplicate span ID %d", id)
		}
		seen[id] = true
	}
}

// TestBatchTraceSpans: AddPhase children must point at the batch span.
func TestBatchTraceSpans(t *testing.T) {
	bt := NewBatchTrace()
	now := time.Now()
	bt.AddPhase("queue-wait", now, now.Add(time.Millisecond))
	bt.AddPhase("search", now.Add(time.Millisecond), now.Add(3*time.Millisecond))
	if len(bt.Spans) != 2 {
		t.Fatalf("%d spans", len(bt.Spans))
	}
	for _, s := range bt.Spans {
		if s.Parent != bt.Batch.ID {
			t.Fatalf("span %q parent %d, batch %d", s.Name, s.Parent, bt.Batch.ID)
		}
		if s.ID == bt.Batch.ID {
			t.Fatalf("span %q reused the batch ID", s.Name)
		}
	}
	if bt.Spans[1].Duration() != 2*time.Millisecond {
		t.Fatalf("duration %v", bt.Spans[1].Duration())
	}
}

// TestHub covers fanout, slow-subscriber drop, and the Active fast path.
func TestHub(t *testing.T) {
	h := NewHub()
	if h.Active() {
		t.Fatal("empty hub reports active")
	}
	h.Publish(&Frame{}) // no subscribers: must not panic
	a := h.Subscribe(2)
	b := h.Subscribe(1)
	if !h.Active() {
		t.Fatal("hub with subscribers reports inactive")
	}
	f1, f2 := &Frame{FrameID: 1}, &Frame{FrameID: 2}
	h.Publish(f1)
	h.Publish(f2) // b's buffer (1) is full: dropped for b, kept for a
	if got := <-a; got != f1 {
		t.Fatalf("a got frame %d", got.FrameID)
	}
	if got := <-a; got != f2 {
		t.Fatalf("a got frame %d", got.FrameID)
	}
	if got := <-b; got != f1 {
		t.Fatalf("b got frame %d", got.FrameID)
	}
	select {
	case f := <-b:
		if f != nil {
			t.Fatalf("b should have dropped frame 2, got %d", f.FrameID)
		}
	default:
	}
	h.Unsubscribe(a)
	if _, open := <-a; open {
		t.Fatal("unsubscribed channel still open")
	}
	h.Unsubscribe(a) // double-unsubscribe must be a no-op
	h.Unsubscribe(b)
	if h.Active() {
		t.Fatal("drained hub reports active")
	}
	if h.NextFrameID() == h.NextFrameID() {
		t.Fatal("frame IDs not unique")
	}
}
