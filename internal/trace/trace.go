// Package trace is the observability layer of the repository: structured
// recording of individual sphere searches and of the serving pipeline that
// dispatches them.
//
// The paper's central evidence is an operation trace — per-level node
// counts, prune rates, and the radius-update trajectory are what justify the
// <1% tree-visit claim (Fig. 5) and drive every platform model. On the FPGA
// these are free-running on-chip counters beside the search pipeline; here
// they are a Recorder interface threaded through internal/sphere. The
// contract mirrors the hardware: recording must never perturb the thing
// being measured, so every hook site guards on a nil interface and the
// disabled path stays at zero allocations per decode (pinned by the
// AllocsPerRun tests in internal/sphere).
package trace

import "time"

// Recorder receives the structured events of one sphere search. Implementers
// need not be safe for concurrent use: a search is single-goroutine, and the
// batch layers install one Recorder per frame.
//
// Depth conventions follow the MST: the root sits at depth 0, a full leaf at
// depth M. NodeExpanded reports the depth of the node being expanded
// (0..M−1); Children reports the depth of the children produced by one
// expansion (1..M). A retried search (radius doubling) calls SearchStart
// again — per-level tallies reset so they describe the final attempt, the
// same attempt decoder.Counters describes.
type Recorder interface {
	// SearchStart begins an attempt over an M-level tree with branching
	// factor |Ω| = alphabet, searching inside radiusSq (+Inf = unbounded).
	SearchStart(m, alphabet int, radiusSq float64)
	// NodeExpanded reports one node expansion at the given depth.
	NodeExpanded(depth int)
	// Children reports the outcome of one batch of generated children at
	// the given depth: pruned fell outside the sphere, kept entered the
	// tree. A late prune (a queued node invalidated by a radius update
	// before its expansion) arrives as Children(depth, 1, 0).
	Children(depth, pruned, kept int)
	// RadiusUpdate reports a radius shrink to radiusSq (an improving leaf —
	// Algorithm 1 lines 7–9).
	RadiusUpdate(radiusSq float64)
	// Degraded reports that the search was cut short, with the
	// decoder.DegradedBy* reason.
	Degraded(reason string)
	// SearchEnd closes the (final) attempt: the terminal radius and how
	// many radius-doubling retries preceded this attempt.
	SearchEnd(finalRadiusSq float64, retries int)
}

// LevelStats tallies one tree level of a recorded search.
type LevelStats struct {
	// Visits counts expansions of nodes at this depth (always 0 at depth M:
	// leaves are committed, not expanded).
	Visits int64
	// Pruned counts children cut at this depth, including late prunes and
	// K-best frontier trimming.
	Pruned int64
	// Kept counts children that entered the tree at this depth. K-best
	// trimming re-prunes some of them afterwards, so Kept is an upper bound
	// on the surviving population under that variant.
	Kept int64
}

// RadiusPoint is one radius shrink, timestamped relative to SearchStart.
type RadiusPoint struct {
	T        time.Duration
	RadiusSq float64
}

// SearchTrace is the concrete Recorder: per-level visit/prune/keep tallies,
// the timestamped radius trajectory, and the degradation outcome of one
// search. Reusable — SearchStart resets it — so a decode loop can run one
// trace per frame without reallocating.
type SearchTrace struct {
	M               int
	Alphabet        int
	InitialRadiusSq float64
	FinalRadiusSq   float64
	Retries         int
	DegradedBy      string
	// Levels is indexed by depth, length M+1.
	Levels []LevelStats
	// Radius is the shrink trajectory of the final attempt.
	Radius []RadiusPoint
	// Duration is SearchStart → SearchEnd of the final attempt.
	Duration time.Duration

	start time.Time
}

// NewSearchTrace returns an empty trace ready to install as a
// sphere.Config.Recorder.
func NewSearchTrace() *SearchTrace { return &SearchTrace{} }

// SearchStart implements Recorder. It resets the per-attempt state so the
// tallies always describe the attempt that produced the returned decision.
func (t *SearchTrace) SearchStart(m, alphabet int, radiusSq float64) {
	t.M, t.Alphabet = m, alphabet
	t.InitialRadiusSq = radiusSq
	t.FinalRadiusSq = radiusSq
	t.DegradedBy = ""
	if cap(t.Levels) < m+1 {
		t.Levels = make([]LevelStats, m+1)
	} else {
		t.Levels = t.Levels[:m+1]
		for i := range t.Levels {
			t.Levels[i] = LevelStats{}
		}
	}
	t.Radius = t.Radius[:0]
	t.start = time.Now()
}

// NodeExpanded implements Recorder.
func (t *SearchTrace) NodeExpanded(depth int) {
	if depth >= 0 && depth < len(t.Levels) {
		t.Levels[depth].Visits++
	}
}

// Children implements Recorder.
func (t *SearchTrace) Children(depth, pruned, kept int) {
	if depth >= 0 && depth < len(t.Levels) {
		t.Levels[depth].Pruned += int64(pruned)
		t.Levels[depth].Kept += int64(kept)
	}
}

// RadiusUpdate implements Recorder.
func (t *SearchTrace) RadiusUpdate(radiusSq float64) {
	t.Radius = append(t.Radius, RadiusPoint{T: time.Since(t.start), RadiusSq: radiusSq})
	t.FinalRadiusSq = radiusSq
}

// Degraded implements Recorder.
func (t *SearchTrace) Degraded(reason string) { t.DegradedBy = reason }

// SearchEnd implements Recorder.
func (t *SearchTrace) SearchEnd(finalRadiusSq float64, retries int) {
	t.FinalRadiusSq = finalRadiusSq
	t.Retries = retries
	t.Duration = time.Since(t.start)
}

// NodesVisited sums the per-level expansion counts. For a search recorded
// through internal/sphere this equals decoder.Counters.NodesExpanded exactly
// — the invariant ValidateFrame and the sphere tests enforce.
func (t *SearchTrace) NodesVisited() int64 {
	var n int64
	for _, l := range t.Levels {
		n += l.Visits
	}
	return n
}

// ChildrenPruned sums the per-level prune counts (equals
// decoder.Counters.ChildrenPruned for a sphere-recorded search).
func (t *SearchTrace) ChildrenPruned() int64 {
	var n int64
	for _, l := range t.Levels {
		n += l.Pruned
	}
	return n
}
