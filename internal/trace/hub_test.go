package trace

import (
	"sync"
	"testing"
)

// TestHubSubscribePublishBasics: published frames reach every subscriber,
// full buffers drop instead of blocking, and Unsubscribe closes the channel.
func TestHubSubscribePublishBasics(t *testing.T) {
	h := NewHub()
	if h.Active() {
		t.Fatal("empty hub reports active")
	}
	a, b := h.Subscribe(4), h.Subscribe(1)
	if !h.Active() {
		t.Fatal("hub with subscribers reports inactive")
	}
	for i := 0; i < 3; i++ {
		h.Publish(&Frame{FrameID: uint64(i + 1)})
	}
	if len(a) != 3 {
		t.Fatalf("deep subscriber holds %d frames, want 3", len(a))
	}
	if len(b) != 1 {
		t.Fatalf("shallow subscriber holds %d frames, want 1 (drops, never blocks)", len(b))
	}
	h.Unsubscribe(a)
	if _, ok := <-a; len(a) != 0 && !ok {
		t.Fatal("unsubscribed channel not drained-then-closed")
	}
	h.Unsubscribe(b)
	h.Unsubscribe(b) // double-unsubscribe is a no-op
	if h.Active() {
		t.Fatal("hub reports active after every unsubscribe")
	}
}

// TestHubConcurrentHammer drives Subscribe/Publish/Unsubscribe/Active from
// many goroutines at once — the send-on-closed-channel and counter races the
// hub's locking must exclude. Run with -race for the real assertion.
func TestHubConcurrentHammer(t *testing.T) {
	h := NewHub()
	const (
		publishers  = 8
		subscribers = 8
		churns      = 50
		frames      = 200
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < frames; i++ {
				// The serving hot path checks Active before assembling a
				// frame; hammer the same read-then-publish interleaving.
				_ = h.Active()
				h.Publish(&Frame{FrameID: h.NextFrameID()})
			}
		}()
	}
	for s := 0; s < subscribers; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < churns; i++ {
				ch := h.Subscribe(2)
				// Drain a little so publishers hit both full and empty
				// buffers, then churn the subscription.
				for j := 0; j < 3; j++ {
					select {
					case <-ch:
					case <-stop:
					default:
					}
				}
				h.Unsubscribe(ch)
				// Reading after close must yield closed, not panic or race.
				for range ch {
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	if h.Active() {
		t.Fatalf("hub still active after all churns")
	}
}
