package trace

import (
	"sync"
	"sync/atomic"
)

// Hub fans completed Frames out to live subscribers (the /v1/trace handler).
// The serving hot path asks Active() once per batch — a single atomic load —
// and skips all trace assembly when nobody is listening, preserving the
// zero-overhead-when-disabled contract at the pipeline level too.
type Hub struct {
	nsubs   atomic.Int64
	frameID atomic.Uint64

	mu   sync.Mutex
	subs map[chan *Frame]struct{}
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{subs: make(map[chan *Frame]struct{})}
}

// Active reports whether at least one subscriber is listening. Safe to call
// from the hot path: one atomic load, no locks.
func (h *Hub) Active() bool { return h.nsubs.Load() > 0 }

// NextFrameID allocates a process-unique frame identifier.
func (h *Hub) NextFrameID() uint64 { return h.frameID.Add(1) }

// Subscribe registers a listener with the given channel buffer. The channel
// is owned by the hub: it is closed by Unsubscribe, never by the caller.
func (h *Hub) Subscribe(buf int) chan *Frame {
	ch := make(chan *Frame, buf)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	h.nsubs.Add(1)
	return ch
}

// Unsubscribe removes a listener and closes its channel. Closing happens
// under the same lock Publish sends under, so no send-on-closed race exists.
func (h *Hub) Unsubscribe(ch chan *Frame) {
	h.mu.Lock()
	if _, ok := h.subs[ch]; ok {
		delete(h.subs, ch)
		close(ch)
		h.nsubs.Add(-1)
	}
	h.mu.Unlock()
}

// Publish delivers a frame to every subscriber, dropping it for listeners
// whose buffer is full — a slow trace reader must never stall the decode
// pipeline.
func (h *Hub) Publish(f *Frame) {
	h.mu.Lock()
	for ch := range h.subs {
		select {
		case ch <- f:
		default:
		}
	}
	h.mu.Unlock()
}
