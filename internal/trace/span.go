package trace

import (
	"sync/atomic"
	"time"
)

// spanIDs allocates process-unique span identifiers. IDs start at 1 so a
// zero Parent unambiguously means "root span".
var spanIDs atomic.Uint64

// NewSpanID returns the next process-unique span ID.
func NewSpanID() uint64 { return spanIDs.Add(1) }

// Span is one timed stage of the serving pipeline. Parent links child stages
// (queue-wait, batch-form, preprocess, search, respond) to the batch span of
// the coalesced dispatch they belong to.
type Span struct {
	ID     uint64
	Parent uint64
	Name   string
	Start  time.Time
	End    time.Time
}

// StartSpan opens a span now under the given parent (0 = root).
func StartSpan(name string, parent uint64) Span {
	return Span{ID: NewSpanID(), Parent: parent, Name: name, Start: time.Now()}
}

// Duration is End − Start (0 while the span is open).
func (s Span) Duration() time.Duration {
	if s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// BatchTrace collects the observability record of one batch decode: the
// parent batch span, its child phase spans, and one SearchTrace per frame.
// core.Accelerator fills Frames and the preprocess/search phases when the
// batch runs with core.WithTrace; the serving scheduler adds the
// queue-wait/batch-form/respond phases around it.
type BatchTrace struct {
	// Batch is the parent span of the whole dispatch.
	Batch Span
	// Spans are the child phase spans, each with Parent == Batch.ID.
	Spans []Span
	// Frames holds one recorded search per batch input, in input order.
	// Frames shed to the linear fallback carry an empty (zero-visit) trace
	// with DegradedBy set.
	Frames []*SearchTrace
}

// NewBatchTrace opens a batch trace with its parent span started now.
func NewBatchTrace() *BatchTrace {
	return &BatchTrace{Batch: StartSpan("batch", 0)}
}

// AddPhase appends a completed child phase span.
func (bt *BatchTrace) AddPhase(name string, start, end time.Time) {
	bt.Spans = append(bt.Spans, Span{
		ID: NewSpanID(), Parent: bt.Batch.ID, Name: name, Start: start, End: end,
	})
}
