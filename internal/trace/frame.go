package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
)

// SchemaVersion identifies the JSON-lines trace wire format. Consumers must
// reject lines whose schema field differs.
const SchemaVersion = "mimosd.trace.v1"

// Frame is one decoded frame's trace on the wire: a single JSON object per
// line (ndjson) streamed by /v1/trace and written by cmd/sdtrace.
//
// Squared radii are non-negative; the sentinel -1 encodes "unbounded"
// (the depth-first strategies start with r² = +Inf, which JSON cannot
// carry).
type Frame struct {
	Schema  string `json:"schema"`
	FrameID uint64 `json:"frame_id"`
	// Source is "serve" for frames captured from the live scheduler and
	// "sim" for local Monte-Carlo traces.
	Source string `json:"source"`

	// MIMO shape: M-level tree, |Ω| = Alphabet branching.
	M        int `json:"m"`
	Alphabet int `json:"alphabet"`

	// Decode outcome. Annotations are resilience markers the serving layer
	// stamps on the whole batch: "retried", "hedged", "shed:<reason>".
	Quality     string   `json:"quality"`
	DegradedBy  string   `json:"degraded_by,omitempty"`
	Annotations []string `json:"annotations,omitempty"`

	// Search profile. NodesVisited is the decoder-reported expansion count;
	// the per-level Visits sum to it exactly (ValidateFrame enforces this).
	// FullTreeNodes = Σ_{d=0..M} |Ω|^d is the exhaustive-search node count
	// the paper's Fig. 5 pruning evidence compares against.
	NodesVisited    int64         `json:"nodes_visited"`
	FullTreeNodes   float64       `json:"full_tree_nodes"`
	InitialRadiusSq float64       `json:"initial_radius_sq"` // -1 = unbounded
	FinalRadiusSq   float64       `json:"final_radius_sq"`   // -1 = unbounded
	Retries         int           `json:"retries"`
	SearchNS        int64         `json:"search_ns"`
	Levels          []FrameLevel  `json:"levels"`
	Radius          []FrameRadius `json:"radius,omitempty"`

	// Serving-pipeline spans (absent for local simulations).
	BatchSpanID uint64      `json:"batch_span_id,omitempty"`
	BatchSize   int         `json:"batch_size,omitempty"`
	Spans       []FrameSpan `json:"spans,omitempty"`
}

// FrameLevel is one tree level's tally. FullWidth = |Ω|^depth is the level
// population of the exhaustive tree.
type FrameLevel struct {
	Depth     int     `json:"depth"`
	Visits    int64   `json:"visits"`
	Pruned    int64   `json:"pruned"`
	Kept      int64   `json:"kept"`
	FullWidth float64 `json:"full_width"`
}

// FrameRadius is one radius shrink, relative to search start.
type FrameRadius struct {
	TNS      int64   `json:"t_ns"`
	RadiusSq float64 `json:"radius_sq"`
}

// FrameSpan is the wire form of a pipeline Span. StartNS is Unix nanoseconds.
type FrameSpan struct {
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_span_id,omitempty"`
	Name     string `json:"name"`
	StartNS  int64  `json:"start_ns"`
	DurNS    int64  `json:"dur_ns"`
}

// sanitizeRadius maps +Inf/NaN onto the JSON-safe -1 sentinel.
func sanitizeRadius(r float64) float64 {
	if math.IsInf(r, 0) || math.IsNaN(r) {
		return -1
	}
	return r
}

// NewFrame converts a recorded search into its wire form. Quality and
// degradation default to the trace's own record; callers holding the decoder
// result overwrite Quality/DegradedBy/NodesVisited from it (they must agree
// — ValidateFrame cross-checks the level sums).
func NewFrame(st *SearchTrace, source string) *Frame {
	f := &Frame{
		Schema:          SchemaVersion,
		Source:          source,
		M:               st.M,
		Alphabet:        st.Alphabet,
		DegradedBy:      st.DegradedBy,
		NodesVisited:    st.NodesVisited(),
		InitialRadiusSq: sanitizeRadius(st.InitialRadiusSq),
		FinalRadiusSq:   sanitizeRadius(st.FinalRadiusSq),
		Retries:         st.Retries,
		SearchNS:        st.Duration.Nanoseconds(),
	}
	f.Levels = make([]FrameLevel, len(st.Levels))
	width := 1.0
	for d := range st.Levels {
		f.Levels[d] = FrameLevel{
			Depth:     d,
			Visits:    st.Levels[d].Visits,
			Pruned:    st.Levels[d].Pruned,
			Kept:      st.Levels[d].Kept,
			FullWidth: width,
		}
		f.FullTreeNodes += width
		width *= float64(st.Alphabet)
	}
	if len(st.Radius) > 0 {
		f.Radius = make([]FrameRadius, len(st.Radius))
		for i, p := range st.Radius {
			f.Radius[i] = FrameRadius{TNS: p.T.Nanoseconds(), RadiusSq: sanitizeRadius(p.RadiusSq)}
		}
	}
	return f
}

// AttachBatch links the frame to its serving-pipeline batch: the parent span
// plus every recorded phase span, batch first.
func (f *Frame) AttachBatch(bt *BatchTrace, batchSize int) {
	f.BatchSpanID = bt.Batch.ID
	f.BatchSize = batchSize
	f.Spans = make([]FrameSpan, 0, len(bt.Spans)+1)
	f.Spans = append(f.Spans, FrameSpan{
		SpanID: bt.Batch.ID, Name: bt.Batch.Name,
		StartNS: bt.Batch.Start.UnixNano(), DurNS: bt.Batch.Duration().Nanoseconds(),
	})
	for _, s := range bt.Spans {
		f.Spans = append(f.Spans, FrameSpan{
			SpanID: s.ID, ParentID: s.Parent, Name: s.Name,
			StartNS: s.Start.UnixNano(), DurNS: s.Duration().Nanoseconds(),
		})
	}
}

// MarshalLine renders the frame as one JSON line (no trailing newline).
func (f *Frame) MarshalLine() ([]byte, error) { return json.Marshal(f) }

// ValidateFrame strictly decodes one JSON line and checks the schema
// invariants: version match, plausible shape, level depths in order, and the
// per-level visit counts summing exactly to the decoder-reported
// NodesVisited — the paper's counter-consistency property, executable.
func ValidateFrame(line []byte) (*Frame, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var f Frame
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: malformed frame: %w", err)
	}
	if f.Schema != SchemaVersion {
		return nil, fmt.Errorf("trace: schema %q, want %q", f.Schema, SchemaVersion)
	}
	if f.M <= 0 || f.Alphabet < 2 {
		return nil, fmt.Errorf("trace: implausible shape m=%d alphabet=%d", f.M, f.Alphabet)
	}
	if f.Quality == "" {
		return nil, fmt.Errorf("trace: missing quality")
	}
	if len(f.Levels) != f.M+1 {
		return nil, fmt.Errorf("trace: %d levels for an m=%d tree (want %d)", len(f.Levels), f.M, f.M+1)
	}
	var visits int64
	for d, l := range f.Levels {
		if l.Depth != d {
			return nil, fmt.Errorf("trace: level %d labeled depth %d", d, l.Depth)
		}
		if l.Visits < 0 || l.Pruned < 0 || l.Kept < 0 {
			return nil, fmt.Errorf("trace: negative tally at depth %d", d)
		}
		visits += l.Visits
	}
	if visits != f.NodesVisited {
		return nil, fmt.Errorf("trace: per-level visits sum to %d, frame reports nodes_visited=%d", visits, f.NodesVisited)
	}
	if f.InitialRadiusSq < 0 && f.InitialRadiusSq != -1 {
		return nil, fmt.Errorf("trace: invalid initial_radius_sq %v", f.InitialRadiusSq)
	}
	for i, s := range f.Spans {
		if s.Name == "" {
			return nil, fmt.Errorf("trace: span %d has no name", i)
		}
		if s.DurNS < 0 {
			return nil, fmt.Errorf("trace: span %q has negative duration", s.Name)
		}
	}
	return &f, nil
}
