// Package lattice implements complex Lenstra–Lenstra–Lovász (CLLL) basis
// reduction and LLL-aided linear MIMO detection.
//
// Lattice reduction is the other established route to near-ML detection at
// linear-decoder cost: reduce the channel basis H → H·T (T unimodular over
// the Gaussian integers), equalize in the reduced domain where the basis is
// nearly orthogonal, round, and map back. It slots into this repository as
// a comparator family between the linear decoders and the exact sphere
// decoder — the trade-off space the paper's introduction sketches — and as
// another preprocessing option whose effect on the SD search can be
// studied.
//
// The implementation follows the complex LLL of Gan, Ling & Mow (2009):
// size reduction with Gaussian-integer rounding and a Lovász condition with
// parameter δ ∈ (1/2, 1].
package lattice

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/cmatrix"
	"repro/internal/constellation"
	"repro/internal/decoder"
)

// DefaultDelta is the customary Lovász parameter.
const DefaultDelta = 0.75

// Reduction is the output of CLLL: a reduced basis and the unimodular
// transform relating it to the input, H·T = Reduced.
type Reduction struct {
	// Reduced is the LLL-reduced basis (same shape as the input).
	Reduced *cmatrix.Matrix
	// T is the M×M unimodular transform over Gaussian integers.
	T *cmatrix.Matrix
	// TInv is T⁻¹, also Gaussian-integer valued.
	TInv *cmatrix.Matrix
	// Swaps counts basis swaps performed (a work/quality diagnostic).
	Swaps int
}

// ErrMaxIterations reports a non-terminating reduction (numerically
// degenerate input).
var ErrMaxIterations = errors.New("lattice: LLL exceeded the iteration budget")

// roundGaussian rounds a complex number to the nearest Gaussian integer.
func roundGaussian(z complex128) complex128 {
	return complex(math.Round(real(z)), math.Round(imag(z)))
}

// LLL reduces the columns of h with Lovász parameter delta. delta <= 0
// selects DefaultDelta. The input must have at least as many rows as
// columns and full column rank.
func LLL(h *cmatrix.Matrix, delta float64) (*Reduction, error) {
	if h.Rows < h.Cols {
		return nil, fmt.Errorf("lattice: need rows >= cols, got %dx%d", h.Rows, h.Cols)
	}
	if delta <= 0 {
		delta = DefaultDelta
	}
	if delta <= 0.5 || delta > 1 {
		return nil, fmt.Errorf("lattice: delta %v outside (1/2, 1]", delta)
	}
	m := h.Cols
	b := h.Clone()
	t := cmatrix.Identity(m)

	// Gram–Schmidt state: mu[i][j] (i > j) and squared norms of the
	// orthogonalized vectors. Recomputed incrementally after updates.
	mu := make([][]complex128, m)
	for i := range mu {
		mu[i] = make([]complex128, m)
	}
	normSq := make([]float64, m)

	gso := func() error {
		// Full modified Gram–Schmidt over the current basis.
		q := make([]cmatrix.Vector, m)
		for i := 0; i < m; i++ {
			col := columnOf(b, i)
			for j := 0; j < i; j++ {
				if normSq[j] == 0 {
					return cmatrix.ErrSingular
				}
				mu[i][j] = cmatrix.Dot(q[j], columnOf(b, i)) / complex(normSq[j], 0)
				cmatrix.AXPY(-mu[i][j], q[j], col)
			}
			q[i] = col
			normSq[i] = cmatrix.Norm2Sq(col)
			if normSq[i] == 0 {
				return cmatrix.ErrSingular
			}
		}
		return nil
	}
	if err := gso(); err != nil {
		return nil, fmt.Errorf("lattice: %w", err)
	}

	red := &Reduction{}
	const maxIters = 10_000
	iters := 0
	k := 1
	for k < m {
		iters++
		if iters > maxIters {
			return nil, ErrMaxIterations
		}
		// Size-reduce column k against k-1 .. 0, updating the Gram–Schmidt
		// coefficients incrementally: subtracting r·b_j changes μ_{k,j'}
		// by −r·μ_{j,j'} for every j' ≤ j (size reduction leaves the
		// orthogonalized vectors, hence normSq, untouched).
		for j := k - 1; j >= 0; j-- {
			r := roundGaussian(mu[k][j])
			if r == 0 {
				continue
			}
			addColumn(b, k, j, -r)
			addColumn(t, k, j, -r)
			mu[k][j] -= r
			for jp := 0; jp < j; jp++ {
				mu[k][jp] -= r * mu[j][jp]
			}
		}
		// Lovász condition.
		lhs := normSq[k]
		muk := mu[k][k-1]
		rhs := (delta - real(muk)*real(muk) - imag(muk)*imag(muk)) * normSq[k-1]
		if lhs >= rhs {
			k++
			continue
		}
		swapColumns(b, k, k-1)
		swapColumns(t, k, k-1)
		red.Swaps++
		if err := gso(); err != nil {
			return nil, fmt.Errorf("lattice: %w", err)
		}
		if k > 1 {
			k--
		}
	}

	red.Reduced = b
	red.T = t
	inv, err := gaussianIntegerInverse(t)
	if err != nil {
		return nil, err
	}
	red.TInv = inv
	return red, nil
}

func columnOf(a *cmatrix.Matrix, j int) cmatrix.Vector {
	col := make(cmatrix.Vector, a.Rows)
	for i := 0; i < a.Rows; i++ {
		col[i] = a.At(i, j)
	}
	return col
}

// addColumn performs col[dst] += alpha·col[src].
func addColumn(a *cmatrix.Matrix, dst, src int, alpha complex128) {
	for i := 0; i < a.Rows; i++ {
		a.Set(i, dst, a.At(i, dst)+alpha*a.At(i, src))
	}
}

func swapColumns(a *cmatrix.Matrix, x, y int) {
	for i := 0; i < a.Rows; i++ {
		vx, vy := a.At(i, x), a.At(i, y)
		a.Set(i, x, vy)
		a.Set(i, y, vx)
	}
}

// gaussianIntegerInverse inverts a unimodular Gaussian-integer matrix
// exactly by Gauss–Jordan elimination and rounds away float residue. The
// result is verified against the identity.
func gaussianIntegerInverse(t *cmatrix.Matrix) (*cmatrix.Matrix, error) {
	n := t.Rows
	a := t.Clone()
	inv := cmatrix.Identity(n)
	for col := 0; col < n; col++ {
		// Pivot: the row with the largest magnitude entry in this column.
		pivot := -1
		best := 0.0
		for r := col; r < n; r++ {
			if v := cmplx.Abs(a.At(r, col)); v > best {
				best = v
				pivot = r
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("lattice: transform not invertible")
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		p := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/p)
			inv.Set(col, j, inv.At(col, j)/p)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
				inv.Set(r, j, inv.At(r, j)-f*inv.At(col, j))
			}
		}
	}
	// Unimodular over Z[i]: the exact inverse has Gaussian-integer entries.
	for i := range inv.Data {
		r := roundGaussian(inv.Data[i])
		if cmplx.Abs(inv.Data[i]-r) > 1e-6 {
			return nil, fmt.Errorf("lattice: transform inverse not Gaussian-integer (entry %v)", inv.Data[i])
		}
		inv.Data[i] = r
	}
	if !cmatrix.Mul(t, inv).EqualApprox(cmatrix.Identity(n), 1e-6) {
		return nil, fmt.Errorf("lattice: inverse verification failed")
	}
	return inv, nil
}

func swapRows(a *cmatrix.Matrix, x, y int) {
	rx, ry := a.Row(x), a.Row(y)
	for j := range rx {
		rx[j], ry[j] = ry[j], rx[j]
	}
}

// OrthogonalityDefect returns Π‖b_j‖ / |det(BᴴB)|^(1/2) ≥ 1 for a square
// basis — the standard measure LLL improves (1 means orthogonal).
func OrthogonalityDefect(b *cmatrix.Matrix) (float64, error) {
	f, err := cmatrix.QR(b)
	if err != nil {
		return 0, err
	}
	logDet := 0.0
	for k := 0; k < b.Cols; k++ {
		logDet += math.Log(real(f.R.At(k, k)))
	}
	logProd := 0.0
	norms := make([]float64, b.Cols)
	b.ColumnNormsSq(norms)
	for _, n := range norms {
		logProd += 0.5 * math.Log(n)
	}
	return math.Exp(logProd - logDet), nil
}

// Decoder is LLL-aided linear detection: reduce the basis, equalize with ZF
// in the reduced domain, round to Gaussian integers, map back through T,
// and slice onto the constellation. Near-ML at low complexity for moderate
// sizes — the classic lattice-reduction detector.
type Decoder struct {
	Const *constellation.Constellation
	// Delta is the Lovász parameter; zero means DefaultDelta.
	Delta float64
}

// NewDecoder builds an LLL-aided ZF detector over c.
func NewDecoder(c *constellation.Constellation) *Decoder { return &Decoder{Const: c} }

// Name implements decoder.Decoder.
func (d *Decoder) Name() string { return "LLL-ZF" }

// Decode implements decoder.Decoder.
//
// The constellation is an offset/scaled Gaussian-integer grid: with scale s
// and L levels per axis, points are s·(2g − (L−1)(1+i)) for Gaussian
// integers g. Equalization happens on the integer grid so the rounding in
// the reduced domain is lattice-consistent.
func (d *Decoder) Decode(h *cmatrix.Matrix, y cmatrix.Vector, noiseVar float64) (*decoder.Result, error) {
	if err := decoder.CheckDims(h, y); err != nil {
		return nil, err
	}
	m := h.Cols
	red, err := LLL(h, d.Delta)
	if err != nil {
		return nil, fmt.Errorf("LLL-ZF: %w", err)
	}
	scale, offset := gridParams(d.Const)
	// y = H·s + n with s = scale·(2·g − offset·1), g Gaussian-integer:
	// y' = y + scale·H·(offset·1) = H·(2·scale·g) = Hred·Tinv·(2·scale·g).
	ones := make(cmatrix.Vector, m)
	for i := range ones {
		ones[i] = offset
	}
	yp := cmatrix.CloneVector(y)
	shift := cmatrix.MulVec(h, ones)
	for i := range yp {
		yp[i] += complex(scale, 0) * shift[i]
	}
	// Solve the reduced least-squares for z = Tinv·g (up to 2·scale).
	zhat, err := cmatrix.PseudoInverseLS(red.Reduced, yp)
	if err != nil {
		return nil, fmt.Errorf("LLL-ZF: %w", err)
	}
	// Round in the reduced domain.
	for i := range zhat {
		zhat[i] = roundGaussian(zhat[i] / complex(2*scale, 0))
	}
	// Back to the original domain: g = T·z, then symbols.
	g := cmatrix.MulVec(red.T, zhat)
	idx := make([]int, m)
	syms := make(cmatrix.Vector, m)
	for i := 0; i < m; i++ {
		point := complex(scale, 0) * (2*g[i] - offset)
		idx[i] = d.Const.Slice(point) // also clips off-grid rounding back onto Ω
		syms[i] = d.Const.Symbol(idx[i])
	}
	metric := cmatrix.Norm2Sq(cmatrix.VecSub(y, cmatrix.MulVec(h, syms)))
	n64, m64 := int64(h.Rows), int64(m)
	var counters decoder.Counters
	counters.OtherFlops = 64*m64*m64*m64 + 32*n64*m64*m64 // LLL + LS solve class
	counters.RegularLoads = n64 * m64
	return &decoder.Result{SymbolIdx: idx, Symbols: syms, Metric: metric, Counters: counters}, nil
}

// gridParams maps the constellation onto its integer grid: amplitude scale
// and the odd offset (L−1).
func gridParams(c *constellation.Constellation) (scale float64, offset complex128) {
	switch c.Modulation() {
	case constellation.BPSK:
		// BPSK points ±1: s·(2g − 1) with s=1, L=2.
		return 1, complex(1, 0)
	case constellation.QAM4:
		return 1 / math.Sqrt2, complex(1, 1)
	case constellation.QAM16:
		return 1 / math.Sqrt(10), complex(3, 3)
	case constellation.QAM64:
		return 1 / math.Sqrt(42), complex(7, 7)
	case constellation.QAM256:
		return 1 / math.Sqrt(170), complex(15, 15)
	default:
		panic(fmt.Sprintf("lattice: unsupported modulation %v", c.Modulation()))
	}
}
