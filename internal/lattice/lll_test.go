package lattice

import (
	"errors"
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/channel"
	"repro/internal/cmatrix"
	"repro/internal/constellation"
	"repro/internal/decoder"
	"repro/internal/mimo"
	"repro/internal/rng"
)

func TestRoundGaussian(t *testing.T) {
	cases := map[complex128]complex128{
		complex(0.4, -0.4): 0,
		complex(0.6, 1.4):  complex(1, 1),
		complex(-1.6, 2.5): complex(-2, 3), // Go rounds half away from zero
	}
	for in, want := range cases {
		if got := roundGaussian(in); got != want {
			t.Errorf("roundGaussian(%v) = %v, want %v", in, got, want)
		}
	}
}

// checkReduction validates the LLL contract on a reduction of h.
func checkReduction(t *testing.T, h *cmatrix.Matrix, red *Reduction) {
	t.Helper()
	// 1. Same lattice: H·T == Reduced.
	if !cmatrix.Mul(h, red.T).EqualApprox(red.Reduced, 1e-8) {
		t.Fatal("H·T != reduced basis")
	}
	// 2. T unimodular over Z[i]: integer entries and T·T⁻¹ = I.
	for _, v := range red.T.Data {
		if cmplx.Abs(v-roundGaussian(v)) > 1e-9 {
			t.Fatalf("T entry %v not a Gaussian integer", v)
		}
	}
	if !cmatrix.Mul(red.T, red.TInv).EqualApprox(cmatrix.Identity(h.Cols), 1e-8) {
		t.Fatal("T·T⁻¹ != I")
	}
}

func TestLLLContract(t *testing.T) {
	r := rng.New(1)
	for _, dim := range [][2]int{{4, 4}, {6, 4}, {8, 8}, {10, 10}} {
		h := channel.Rayleigh(r, dim[0], dim[1])
		red, err := LLL(h, 0)
		if err != nil {
			t.Fatalf("%v: %v", dim, err)
		}
		checkReduction(t, h, red)
	}
}

func TestLLLImprovesOrthogonality(t *testing.T) {
	r := rng.New(2)
	improved := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		h := channel.Rayleigh(r, 8, 8)
		before, err := OrthogonalityDefect(h)
		if err != nil {
			t.Fatal(err)
		}
		red, err := LLL(h, 0)
		if err != nil {
			t.Fatal(err)
		}
		after, err := OrthogonalityDefect(red.Reduced)
		if err != nil {
			t.Fatal(err)
		}
		if after <= before+1e-9 {
			improved++
		}
		if after < 1-1e-9 {
			t.Fatalf("defect %v below 1", after)
		}
	}
	if improved < trials*8/10 {
		t.Fatalf("LLL improved orthogonality in only %d/%d trials", improved, trials)
	}
}

func TestLLLIdempotentOnReducedBasis(t *testing.T) {
	// Reducing an already reduced basis should need (almost) no swaps.
	r := rng.New(3)
	h := channel.Rayleigh(r, 6, 6)
	red, err := LLL(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	again, err := LLL(red.Reduced, 0)
	if err != nil {
		t.Fatal(err)
	}
	if again.Swaps != 0 {
		t.Fatalf("re-reduction performed %d swaps", again.Swaps)
	}
}

func TestLLLOrthogonalInputUntouched(t *testing.T) {
	h := cmatrix.Identity(5)
	red, err := LLL(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if red.Swaps != 0 || !red.Reduced.EqualApprox(h, 1e-12) {
		t.Fatal("identity basis modified")
	}
}

func TestLLLValidation(t *testing.T) {
	if _, err := LLL(cmatrix.NewMatrix(2, 3), 0); err == nil {
		t.Error("wide matrix accepted")
	}
	h := channel.Rayleigh(rng.New(4), 4, 4)
	if _, err := LLL(h, 0.3); err == nil {
		t.Error("delta <= 1/2 accepted")
	}
	if _, err := LLL(h, 1.5); err == nil {
		t.Error("delta > 1 accepted")
	}
	singular := cmatrix.FromSlice(3, 2, []complex128{1, 1, 2, 2, 3, 3})
	if _, err := LLL(singular, 0); !errors.Is(err, cmatrix.ErrSingular) {
		t.Errorf("singular basis: err = %v", err)
	}
}

func TestDecoderRecoversNoiseless(t *testing.T) {
	r := rng.New(5)
	for _, mod := range []constellation.Modulation{constellation.QAM4, constellation.QAM16} {
		c := constellation.New(mod)
		d := NewDecoder(c)
		cfg := mimo.Config{Tx: 5, Rx: 5, Mod: mod}
		for trial := 0; trial < 20; trial++ {
			f, err := mimo.GenerateFrame(r, cfg, 300)
			if err != nil {
				t.Fatal(err)
			}
			res, err := d.Decode(f.H, f.Y, 1e-30)
			if err != nil {
				t.Fatal(err)
			}
			for i := range f.SymbolIdx {
				if res.SymbolIdx[i] != f.SymbolIdx[i] {
					t.Fatalf("%v trial %d antenna %d: %d vs %d",
						mod, trial, i, res.SymbolIdx[i], f.SymbolIdx[i])
				}
			}
		}
	}
}

func TestDecoderBetweenZFAndML(t *testing.T) {
	// The point of lattice reduction: LLL-ZF should beat plain ZF on BER
	// while costing far less than the sphere search. Statistical check at
	// a stressed operating point.
	cfg := mimo.Config{Tx: 8, Rx: 8, Mod: constellation.QAM4}
	c := constellation.New(cfg.Mod)
	zf, err := mimo.Run(cfg, 10, 600, decoder.NewZF(c), 42)
	if err != nil {
		t.Fatal(err)
	}
	lll, err := mimo.Run(cfg, 10, 600, NewDecoder(c), 42)
	if err != nil {
		t.Fatal(err)
	}
	if lll.BitErrors >= zf.BitErrors {
		t.Fatalf("LLL-ZF (%d bit errors) not better than ZF (%d)", lll.BitErrors, zf.BitErrors)
	}
}

func TestDecoderMetricConsistency(t *testing.T) {
	r := rng.New(6)
	c := constellation.New(constellation.QAM4)
	d := NewDecoder(c)
	cfg := mimo.Config{Tx: 6, Rx: 6, Mod: constellation.QAM4}
	for trial := 0; trial < 10; trial++ {
		f, err := mimo.GenerateFrame(r, cfg, 10)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Decode(f.H, f.Y, f.NoiseVar)
		if err != nil {
			t.Fatal(err)
		}
		want := cmatrix.Norm2Sq(cmatrix.VecSub(f.Y, cmatrix.MulVec(f.H, res.Symbols)))
		if math.Abs(res.Metric-want) > 1e-9*(1+want) {
			t.Fatalf("metric %v vs residual %v", res.Metric, want)
		}
		if res.Counters.TotalFlops() <= 0 {
			t.Fatal("no work recorded")
		}
	}
}

func TestDecoderValidation(t *testing.T) {
	c := constellation.New(constellation.QAM4)
	d := NewDecoder(c)
	h := channel.Rayleigh(rng.New(7), 4, 4)
	if _, err := d.Decode(h, make(cmatrix.Vector, 3), 0.1); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if d.Name() != "LLL-ZF" {
		t.Errorf("name %q", d.Name())
	}
}

func TestOrthogonalityDefectIdentity(t *testing.T) {
	got, err := OrthogonalityDefect(cmatrix.Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("identity defect %v, want 1", got)
	}
}
