// Package gpu models the GPU comparator of Fig. 11: the GEMM-based
// breadth-first sphere decoder of Arfaoui et al. [1], reproduced by the
// paper's authors on an NVIDIA A100. The search itself is executed for real
// by internal/sphere's BFS strategy (with the conservative initial radius a
// GPU implementation needs, since a missed solution costs a full device
// round-trip); this package converts that trace into device time.
//
// The model captures the paper's diagnosis of why GPUs lose here
// (Section IV-F): the per-level radius synchronization. Each tree level is
// one batched GEMM kernel over the whole frontier — high throughput — but
// every level boundary pays a kernel launch plus a device-wide
// synchronization and radius reduction through host-visible memory. With M
// levels per decode and little work per level at high SNR, the fixed
// synchronization cost dominates, which is exactly how the paper's FPGA
// earns its 57× average advantage.
package gpu

import (
	"time"

	"repro/internal/decoder"
)

// Model is the A100 GEMM-BFS execution model.
type Model struct {
	// PerLevelSyncUs is the kernel launch + device sync + radius reduction
	// cost per tree level, in microseconds: the fixed floor the paper's
	// Section IV-F blames for GPU inefficiency at high SNR, where almost
	// no tree work remains but every level still pays a launch, a
	// device-wide synchronization, and a host round-trip for the radius.
	PerLevelSyncUs float64
	// PerNodeNs is the frontier-management cost per expanded node: global-
	// memory writes/reads of node state, per-level stream compaction of
	// survivors, and the scattered tree-state gathers the FPGA's prefetch
	// unit hides. At low SNR the conservative-radius BFS frontier explodes
	// and this term dominates — the regime where the paper's 57× average
	// advantage is earned.
	PerNodeNs float64
	// EffectiveTFLOPS is the sustained FP32 GEMM rate on the frontier
	// multiplies. The level GEMMs are skinny (a 1×depth row block against
	// the frontier), so the sustained rate is memory-bound, far below the
	// device peak.
	EffectiveTFLOPS float64
	// TransferUsPerFrame covers staging each received vector and result.
	TransferUsPerFrame float64
	// RadiusScale is the conservative BFS sphere scale the device-side
	// search must use (see package comment); exported so the harness builds
	// the matching sphere.Config.
	RadiusScale float64
}

// NewA100 returns the calibrated A100 model. Anchor: the paper's
// reproduction of [1] decodes the 10×10 4-QAM batch in ~6 ms at 12 dB,
// where the conservative-radius BFS explores a few tens of nodes per
// vector; at 4 dB the same search explores ~2000 nodes per vector and the
// per-node frontier traffic takes over.
func NewA100() *Model {
	return &Model{
		PerLevelSyncUs:     250,
		PerNodeNs:          150,
		EffectiveTFLOPS:    0.5,
		TransferUsPerFrame: 0.4,
		RadiusScale:        8,
	}
}

// Name implements platform.Model.
func (m *Model) Name() string { return "GPU-A100(GEMM-BFS)" }

// BatchTime implements platform.Model. The trace must come from a BFS
// search (sphere.Config{Strategy: BFS, RadiusScale: m.RadiusScale}).
func (m *Model) BatchTime(w decoder.Workload, c decoder.Counters) (time.Duration, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	// One kernel + sync per tree level. Levels execute per batch, not per
	// frame: the GPU processes the whole batch's frontier in one kernel,
	// which is the entire point of the GEMM refactoring [1].
	levels := float64(w.M)
	syncUs := levels * m.PerLevelSyncUs
	// GEMM work: the traced child-evaluation MACs at the effective rate.
	// 8 real flops per complex MAC.
	flops := float64(c.EvalDepthSum) * float64(w.P) * 8
	gemmUs := flops / (m.EffectiveTFLOPS * 1e6)
	// Frontier management: per-node global-memory state traffic and
	// compaction.
	nodeUs := float64(c.NodesExpanded) * m.PerNodeNs * 1e-3
	transferUs := float64(w.Frames) * m.TransferUsPerFrame
	return time.Duration((syncUs + gemmUs + nodeUs + transferUs) * 1e3), nil
}

// Power implements platform.Model: an A100 under this duty cycle draws on
// the order of 250 W.
func (m *Model) Power(decoder.Workload) float64 { return 250 }
