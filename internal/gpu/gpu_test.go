package gpu

import (
	"testing"
	"time"

	"repro/internal/decoder"
)

func w10() decoder.Workload { return decoder.Workload{M: 10, N: 10, P: 4, Frames: 1000} }

func TestAnchor6msAt12dB(t *testing.T) {
	// Fig. 11 anchor: the GPU GEMM-BFS decodes the 10×10 4-QAM batch in
	// ~6 ms at 12 dB, where the conservative-radius BFS explores a few tens
	// of nodes per vector.
	m := NewA100()
	c := decoder.Counters{NodesExpanded: 30_000, EvalDepthSum: 30_000 * 11 / 2}
	dur, err := m.BatchTime(w10(), c)
	if err != nil {
		t.Fatal(err)
	}
	if dur < 3*time.Millisecond || dur > 10*time.Millisecond {
		t.Fatalf("GPU batch time %v, paper ~6 ms", dur)
	}
}

func TestSyncDominatesAtHighSNR(t *testing.T) {
	// Even with almost no tree work, the per-level synchronization floor
	// keeps the GPU in the milliseconds — the paper's core argument.
	m := NewA100()
	c := decoder.Counters{NodesExpanded: 100, EvalDepthSum: 550}
	dur, err := m.BatchTime(w10(), c)
	if err != nil {
		t.Fatal(err)
	}
	floor := time.Duration(float64(w10().M) * m.PerLevelSyncUs * 1e3)
	if dur < floor {
		t.Fatalf("GPU time %v below the sync floor %v", dur, floor)
	}
}

func TestSyncFloorScalesWithLevels(t *testing.T) {
	m := NewA100()
	c := decoder.Counters{NodesExpanded: 100, EvalDepthSum: 550}
	t10, err := m.BatchTime(decoder.Workload{M: 10, N: 10, P: 4, Frames: 1000}, c)
	if err != nil {
		t.Fatal(err)
	}
	t20, err := m.BatchTime(decoder.Workload{M: 20, N: 20, P: 4, Frames: 1000}, c)
	if err != nil {
		t.Fatal(err)
	}
	if t20 < t10*3/2 {
		t.Fatalf("sync floor did not scale with levels: %v vs %v", t10, t20)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewA100().BatchTime(decoder.Workload{}, decoder.Counters{}); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestPowerAndName(t *testing.T) {
	m := NewA100()
	if m.Name() == "" {
		t.Fatal("no name")
	}
	if p := m.Power(w10()); p < 100 || p > 500 {
		t.Fatalf("A100 power %v out of class", p)
	}
	if m.RadiusScale <= 2 {
		t.Fatal("GPU BFS radius must be conservative (scale > default 2)")
	}
}
