package fpga

import (
	"testing"
	"time"

	"repro/internal/rng"
)

func TestLPTBasics(t *testing.T) {
	s, err := ScheduleFrames(2, []int64{5, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	// LPT: 5 → p0, 3 → p1, 2 → p1 ⇒ makespan 5.
	if s.Makespan != 5 {
		t.Fatalf("makespan %d, want 5", s.Makespan)
	}
	if got := s.PerPipeline[0] + s.PerPipeline[1]; got != 10 {
		t.Fatalf("work lost: %d", got)
	}
	if len(s.Assignment) != 3 {
		t.Fatal("missing assignments")
	}
}

func TestLPTConservesWorkAndBounds(t *testing.T) {
	r := rng.New(1)
	costs := make([]int64, 200)
	var total, max int64
	for i := range costs {
		// Heavy-tailed costs, like sphere decode times.
		c := int64(10 + r.Intn(50))
		if r.Intn(20) == 0 {
			c *= 50
		}
		costs[i] = c
		total += c
		if c > max {
			max = c
		}
	}
	for _, k := range []int{1, 2, 4, 7} {
		s, err := ScheduleFrames(k, costs)
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, c := range s.PerPipeline {
			sum += c
		}
		if sum != total {
			t.Fatalf("k=%d: work not conserved: %d vs %d", k, sum, total)
		}
		lower := total / int64(k)
		if max > lower {
			lower = max
		}
		if s.Makespan < lower {
			t.Fatalf("k=%d: makespan %d below lower bound %d", k, s.Makespan, lower)
		}
		// LPT guarantee: ≤ (4/3 − 1/3k)·OPT ≤ 4/3·(lower bound is ≤ OPT,
		// so allow 4/3 of a slightly padded bound).
		if float64(s.Makespan) > 4.0/3.0*float64(lower)+float64(max) {
			t.Fatalf("k=%d: makespan %d far above LPT bound (lower %d)", k, s.Makespan, lower)
		}
	}
}

func TestLPTBeatsRoundRobinOnHeavyTail(t *testing.T) {
	// Adversarial heavy tail: round-robin piles the giants on one pipeline.
	costs := make([]int64, 64)
	for i := range costs {
		if i%4 == 0 {
			costs[i] = 1000
		} else {
			costs[i] = 10
		}
	}
	lpt, err := ScheduleFrames(4, costs)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RoundRobinSchedule(4, costs)
	if err != nil {
		t.Fatal(err)
	}
	if lpt.Makespan >= rr.Makespan {
		t.Fatalf("LPT makespan %d not below round-robin %d", lpt.Makespan, rr.Makespan)
	}
	if lpt.Imbalance() > 1.1 {
		t.Fatalf("LPT imbalance %.3f too high", lpt.Imbalance())
	}
	if rr.Imbalance() < 2 {
		t.Fatalf("round-robin should be badly imbalanced here, got %.3f", rr.Imbalance())
	}
}

func TestScheduleValidation(t *testing.T) {
	if _, err := ScheduleFrames(0, []int64{1}); err == nil {
		t.Error("zero pipelines accepted")
	}
	if _, err := ScheduleFrames(2, nil); err == nil {
		t.Error("empty frames accepted")
	}
	if _, err := ScheduleFrames(2, []int64{1, -1}); err == nil {
		t.Error("negative cost accepted")
	}
	if _, err := RoundRobinSchedule(0, []int64{1}); err == nil {
		t.Error("RR zero pipelines accepted")
	}
	if _, err := RoundRobinSchedule(2, nil); err == nil {
		t.Error("RR empty frames accepted")
	}
	if _, err := RoundRobinSchedule(2, []int64{-1}); err == nil {
		t.Error("RR negative cost accepted")
	}
}

func TestImbalanceIdentity(t *testing.T) {
	s, err := ScheduleFrames(2, []int64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Imbalance() != 1 {
		t.Fatalf("perfect split imbalance %.3f", s.Imbalance())
	}
	empty := &Schedule{PerPipeline: []int64{0, 0}}
	if empty.Imbalance() != 1 {
		t.Fatal("zero-work imbalance should be 1")
	}
}

func TestTransferUnder3Percent(t *testing.T) {
	// The paper's claim (Section III-B): the one-time PCIe ingress is <3%
	// of execution time. Check it for the canonical 10×10 4-QAM batch at
	// its measured decode time (~2 ms).
	tm := NewTransfer()
	w := Workload{M: 10, N: 10, P: 4, Frames: 1000}
	frac, err := tm.TransferFraction(w, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if frac >= 0.03 {
		t.Fatalf("transfer fraction %.4f, paper claims <3%%", frac)
	}
}

func TestTransferWorstCasePerFrameChannel(t *testing.T) {
	// Sending a fresh H per frame breaks the 3% claim for fast decodes —
	// the block-fading reuse is load-bearing, which is worth pinning down.
	tm := NewTransfer()
	tm.ChannelReuse = 1
	w := Workload{M: 10, N: 10, P: 4, Frames: 1000}
	fracFresh, err := tm.TransferFraction(w, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	tm.ChannelReuse = 1 << 30
	fracShared, err := tm.TransferFraction(w, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fracFresh <= fracShared*5 {
		t.Fatalf("per-frame channel (%.4f) should cost far more than shared (%.4f)", fracFresh, fracShared)
	}
}

func TestIngressBytes(t *testing.T) {
	tm := TransferModel{PCIeGBs: 12, ChannelReuse: 10}
	w := Workload{M: 4, N: 4, P: 4, Frames: 20}
	// 2 blocks × 16 complex × 8 B + 20 × 4 complex × 8 B = 256 + 640.
	if got := tm.IngressBytes(w); got != 896 {
		t.Fatalf("IngressBytes = %d, want 896", got)
	}
}

func TestTransferValidation(t *testing.T) {
	tm := NewTransfer()
	if _, err := tm.IngressTime(Workload{}); err == nil {
		t.Error("invalid workload accepted")
	}
	bad := TransferModel{PCIeGBs: 0, ChannelReuse: 1}
	if _, err := bad.IngressTime(Workload{M: 4, N: 4, P: 4, Frames: 1}); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := tm.TransferFraction(Workload{M: 4, N: 4, P: 4, Frames: 1}, 0); err == nil {
		t.Error("zero decode time accepted")
	}
}
