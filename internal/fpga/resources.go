package fpga

import "fmt"

// Utilization reports the absolute and fractional consumption of each FPGA
// resource class by a design, mirroring Table I.
type Utilization struct {
	FreqMHz float64
	LUTs    int
	FFs     int
	DSPs    int
	BRAMs   int
	URAMs   int
	Device  DeviceSpec
}

// Frac returns utilization fractions in Table I's order:
// LUT, FF, DSP, BRAM, URAM.
func (u Utilization) Frac() (lut, ff, dsp, bram, uram float64) {
	return float64(u.LUTs) / float64(u.Device.LUTs),
		float64(u.FFs) / float64(u.Device.FFs),
		float64(u.DSPs) / float64(u.Device.DSPs),
		float64(u.BRAMs) / float64(u.Device.BRAMs),
		float64(u.URAMs) / float64(u.Device.URAMs)
}

// Fits reports whether the design fits on the device.
func (u Utilization) Fits() bool {
	lut, ff, dsp, bram, uram := u.Frac()
	return lut <= 1 && ff <= 1 && dsp <= 1 && bram <= 1 && uram <= 1
}

// String renders a Table I style column.
func (u Utilization) String() string {
	lut, ff, dsp, bram, uram := u.Frac()
	return fmt.Sprintf("%.0f MHz LUT %.0f%% FF %.0f%% DSP %.0f%% BRAM %.0f%% URAM %.0f%%",
		u.FreqMHz, lut*100, ff*100, dsp*100, bram*100, uram*100)
}

// Resource model coefficients.
//
// The estimator is a component model: each pipeline module contributes
// resources linear in the branching width P (one evaluation lane per child,
// since the paper builds one design per modulation), except the Meta State
// Table, whose storage follows the paper's own scaling law for the tree
// state matrix — 4·Modulation²·N values (Section IV-E) — and therefore
// grows with P²·N in URAM blocks.
//
// Coefficient values are calibrated so that the four synthesized
// configurations the paper reports (baseline/optimized × 4-/16-QAM at
// N = 10) reproduce Table I exactly; other (variant, P, N) points are model
// extrapolations. The baseline's large fixed terms reflect the unmodified
// Vitis BLAS engines and generic control logic the optimized design strips
// (Section III-C1, III-C4).
type resourceCoeffs struct {
	lutFixed, lutPerLane   float64
	ffFixed, ffPerLane     float64
	dspFixed, dspPerLane   float64
	bramFixed, bramPerLane float64
	uramFixed              float64
	uramPerState           float64 // URAM blocks per P²·N tree-state unit
}

var coeffs = map[Variant]resourceCoeffs{
	Baseline: {
		lutFixed: 287_000, lutPerLane: 22_800,
		ffFixed: 460_000, ffPerLane: 15_200,
		dspFixed: 511, dspPerLane: 52.7,
		bramFixed: 403, bramPerLane: 10,
		uramFixed: 104.5, uramPerState: 1.84,
	},
	Optimized: {
		lutFixed: 90_000, lutPerLane: 13_000,
		ffFixed: 147_000, ffPerLane: 8_700,
		dspFixed: 151, dspPerLane: 30,
		bramFixed: 296, bramPerLane: 6.7,
		uramFixed: 52.3, uramPerState: 0.92,
	},
}

// Resources estimates the design's consumption of each resource class.
func (d *Design) Resources() Utilization {
	c := coeffs[d.Variant]
	p := float64(d.P())
	// The MST partitions scale with the tree-state matrix: P²·N values,
	// normalized to the calibration point N = 10.
	stateUnits := p * p * float64(d.N) / 10
	pipes := float64(d.Pipelines)
	return Utilization{
		FreqMHz: d.Variant.ClockHz() / 1e6,
		LUTs:    int((c.lutFixed + c.lutPerLane*p) * pipes),
		FFs:     int((c.ffFixed + c.ffPerLane*p) * pipes),
		DSPs:    int((c.dspFixed + c.dspPerLane*p) * pipes),
		BRAMs:   int((c.bramFixed + c.bramPerLane*p) * pipes),
		URAMs:   int((c.uramFixed + c.uramPerState*stateUnits) * pipes),
		Device:  d.Device,
	}
}

// MaxPipelines returns how many replicated pipelines of this design fit on
// the device — the head-room metric the paper's Section III-C4 optimizes
// for.
func (d *Design) MaxPipelines() int {
	one := *d
	one.Pipelines = 1
	u := one.Resources()
	lut, ff, dsp, bram, uram := u.Frac()
	worst := 0.0
	for _, f := range []float64{lut, ff, dsp, bram, uram} {
		if f > worst {
			worst = f
		}
	}
	if worst == 0 {
		return 0
	}
	return int(1 / worst)
}
