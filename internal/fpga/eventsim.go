package fpga

import (
	"fmt"
	"time"

	"repro/internal/dataflow"
)

// ExpansionTrace records, in traversal order, the tree depth of every node
// expansion of a search — the replay input for the event-driven pipeline
// simulator. Populate it through sphere.Config.OnExpand.
type ExpansionTrace struct {
	Depths []int16
}

// Add records one expansion at the given depth.
func (t *ExpansionTrace) Add(depth int) {
	t.Depths = append(t.Depths, int16(depth))
}

// Len returns the number of recorded expansions.
func (t *ExpansionTrace) Len() int { return len(t.Depths) }

// Hook returns a callback suitable for sphere.Config.OnExpand.
func (t *ExpansionTrace) Hook() func(int) {
	return func(depth int) { t.Add(depth) }
}

// Stage names of the Fig. 4 pipeline as used by the event simulator.
const (
	StageBranch = "branch"
	StageGather = "gather"
	StageGEMM   = "gemm"
	StageNORM   = "norm"
	StageSort   = "sort"
	StagePrune  = "prune"
)

// EventSim replays a recorded search through a cycle-driven dataflow model
// of the pipeline and returns the simulated batch time plus per-stage
// occupancy. It is the structural cross-check of the closed-form BatchTime
// model: BatchTime asserts per-expansion cycle costs; EventSim derives them
// by streaming every child token through the stage graph.
//
// Design mapping (Section III):
//
//   - Optimized: expansions flow speculatively — the sorted insertion
//     returns the best child to the stack top while buffered work keeps the
//     pipeline full ("minimizing bubbles in the architecture's pipeline"),
//     so jobs are pipelined, the gather stage is transparent (prefetch
//     double-buffering), and the GEMM engine initiates one child per cycle
//     for dot products up to the array depth.
//   - Baseline: the direct HLS port executes expansions strictly in order
//     (Serial jobs), pays the un-prefetched gather per path element, and
//     sorts through a slower comparator network.
func (d *Design) EventSim(w Workload, trace *ExpansionTrace) (time.Duration, *dataflow.Result, error) {
	if err := w.Validate(); err != nil {
		return 0, nil, err
	}
	if trace == nil || trace.Len() == 0 {
		return 0, nil, fmt.Errorf("fpga: empty expansion trace")
	}

	var stages []dataflow.StageSpec
	serial := false
	switch d.Variant {
	case Optimized:
		stages = []dataflow.StageSpec{
			{Name: StageBranch, II: 1, Latency: 1},
			{Name: StageGather, II: 1, Latency: 1}, // hidden by double buffering
			{Name: StageGEMM, II: 1, Latency: 4},
			{Name: StageNORM, II: 1, Latency: 2},
			{Name: StageSort, II: 1, Latency: sortStages(w.P)},
			{Name: StagePrune, II: 1, Latency: 1},
		}
	case Baseline:
		stages = []dataflow.StageSpec{
			{Name: StageBranch, II: 2, Latency: 2},
			{Name: StageGather, II: 1, Latency: 4}, // II overridden per job
			{Name: StageGEMM, II: baseEvalRounds, Latency: 6},
			{Name: StageNORM, II: 1, Latency: 2},
			{Name: StageSort, II: 2, Latency: sortStages(w.P) * 2},
			{Name: StagePrune, II: 1, Latency: 1},
		}
		serial = true
	default:
		return 0, nil, fmt.Errorf("fpga: unknown variant %d", d.Variant)
	}

	depthLanes := optDepthLanes
	if d.Variant == Baseline {
		depthLanes = baseDepthLanes
	}

	jobs := make([]dataflow.Job, 0, trace.Len())
	for _, depth := range trace.Depths {
		dotDepth := int(depth) + 1 // children evaluate a (depth+1)-deep dot product
		job := dataflow.Job{Tokens: w.P, Serial: serial}
		override := map[string]int{}
		if rounds := 1 + (dotDepth-1)/depthLanes; rounds > 1 {
			override[StageGEMM] = rounds * stageII(stages, StageGEMM)
		}
		if d.Variant == Baseline && depth > 0 {
			// Un-prefetched path gather: gatherCyclesPerLoad per path
			// element, spread over the P child tokens.
			per := (int(depth)*gatherCyclesPerLoad + w.P - 1) / w.P
			if per > 1 {
				override[StageGather] = per
			}
		}
		if len(override) > 0 {
			job.StageII = override
		}
		jobs = append(jobs, job)
	}

	res, err := dataflow.Simulate(stages, jobs)
	if err != nil {
		return 0, nil, err
	}
	cycles := res.TotalCycles + int64(w.Frames)*fillCyclesPerFrame
	seconds := float64(cycles) / d.Variant.ClockHz()
	return time.Duration(seconds * float64(time.Second)), res, nil
}

// EventSimMulti replays per-frame traces over several replicated pipelines
// under a given frame→pipeline assignment (e.g. from ScheduleFrames) and
// returns the makespan — the event-level counterpart of the scheduler's
// cycle arithmetic. traces[i] is frame i's expansion trace; assignment[i]
// its pipeline. The per-pipeline times also come back for imbalance
// inspection.
func (d *Design) EventSimMulti(w Workload, traces []*ExpansionTrace, assignment []int, pipelines int) (time.Duration, []time.Duration, error) {
	if err := w.Validate(); err != nil {
		return 0, nil, err
	}
	if pipelines < 1 {
		return 0, nil, fmt.Errorf("fpga: need at least one pipeline")
	}
	if len(traces) != len(assignment) {
		return 0, nil, fmt.Errorf("fpga: %d traces vs %d assignments", len(traces), len(assignment))
	}
	// Concatenate each pipeline's assigned traces and simulate them
	// independently (replicated pipelines share nothing but the ingress).
	merged := make([]*ExpansionTrace, pipelines)
	frameCounts := make([]int, pipelines)
	for i, tr := range traces {
		p := assignment[i]
		if p < 0 || p >= pipelines {
			return 0, nil, fmt.Errorf("fpga: frame %d assigned to pipeline %d of %d", i, p, pipelines)
		}
		if merged[p] == nil {
			merged[p] = &ExpansionTrace{}
		}
		merged[p].Depths = append(merged[p].Depths, tr.Depths...)
		frameCounts[p]++
	}
	perPipe := make([]time.Duration, pipelines)
	var makespan time.Duration
	for p := 0; p < pipelines; p++ {
		if merged[p] == nil || merged[p].Len() == 0 {
			continue
		}
		wp := w
		wp.Frames = frameCounts[p]
		dur, _, err := d.EventSim(wp, merged[p])
		if err != nil {
			return 0, nil, err
		}
		perPipe[p] = dur
		if dur > makespan {
			makespan = dur
		}
	}
	return makespan, perPipe, nil
}

func stageII(stages []dataflow.StageSpec, name string) int {
	for _, s := range stages {
		if s.Name == name {
			if s.II < 1 {
				return 1
			}
			return s.II
		}
	}
	return 1
}
