package fpga

import (
	"fmt"

	"repro/internal/constellation"
)

// Design describes one synthesized sphere-decoder pipeline: a variant
// (baseline or optimized) specialized for a modulation (the paper builds a
// separate design per modulation to strip control logic) and a MIMO size.
type Design struct {
	Variant Variant
	Mod     constellation.Modulation
	// M, N are the transmit/receive antenna counts the design is sized for.
	M, N int
	// Pipelines is the number of replicated decode pipelines. The paper's
	// resource optimization explicitly targets keeping one pipeline under
	// 50% so a second can be instantiated (Section III-C4); >1 models that
	// future-work replication.
	Pipelines int
	// Device is the target card.
	Device DeviceSpec
}

// NewDesign validates and returns a design with defaults applied
// (one pipeline on a U280).
func NewDesign(v Variant, mod constellation.Modulation, m, n int) (*Design, error) {
	if m <= 0 || n < m {
		return nil, fmt.Errorf("fpga: invalid MIMO size %dx%d", m, n)
	}
	switch mod {
	case constellation.BPSK, constellation.QAM4, constellation.QAM16, constellation.QAM64:
	default:
		return nil, fmt.Errorf("fpga: unknown modulation %v", mod)
	}
	if v != Baseline && v != Optimized {
		return nil, fmt.Errorf("fpga: unknown variant %d", v)
	}
	return &Design{Variant: v, Mod: mod, M: m, N: n, Pipelines: 1, Device: U280}, nil
}

// MustNewDesign is NewDesign that panics on error.
func MustNewDesign(v Variant, mod constellation.Modulation, m, n int) *Design {
	d, err := NewDesign(v, mod, m, n)
	if err != nil {
		panic(err)
	}
	return d
}

// P returns the modulation factor |Ω| — the pipeline's branching width.
func (d *Design) P() int { return constellation.New(d.Mod).Size() }

// Name renders e.g. "FPGA-optimized(4-QAM,10x10)".
func (d *Design) Name() string {
	return fmt.Sprintf("FPGA-%s(%v,%dx%d)", d.Variant, d.Mod, d.M, d.N)
}

// sortStages returns the latency in pipeline stages of a bitonic sorting
// network over p elements: log₂p·(log₂p+1)/2 compare-exchange stages.
func sortStages(p int) int {
	lg := 0
	for 1<<lg < p {
		lg++
	}
	return lg * (lg + 1) / 2
}
