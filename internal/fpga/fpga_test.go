package fpga

import (
	"math"
	"testing"
	"time"

	"repro/internal/constellation"
	"repro/internal/decoder"
)

func TestNewDesignValidation(t *testing.T) {
	if _, err := NewDesign(Optimized, constellation.QAM4, 0, 10); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := NewDesign(Optimized, constellation.QAM4, 10, 5); err == nil {
		t.Error("N<M accepted")
	}
	if _, err := NewDesign(Optimized, constellation.Modulation(9), 10, 10); err == nil {
		t.Error("bad modulation accepted")
	}
	if _, err := NewDesign(Variant(7), constellation.QAM4, 10, 10); err == nil {
		t.Error("bad variant accepted")
	}
	d, err := NewDesign(Optimized, constellation.QAM16, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Pipelines != 1 || d.Device.Name != U280.Name {
		t.Fatal("defaults not applied")
	}
	if d.P() != 16 {
		t.Fatalf("P = %d", d.P())
	}
}

func TestVariantClocksMatchTableI(t *testing.T) {
	if Baseline.ClockHz() != 253e6 {
		t.Errorf("baseline clock %v", Baseline.ClockHz())
	}
	if Optimized.ClockHz() != 300e6 {
		t.Errorf("optimized clock %v", Optimized.ClockHz())
	}
}

// TestResourcesReproduceTableI checks the four calibration points against
// the paper's Table I within 1.5 percentage points.
func TestResourcesReproduceTableI(t *testing.T) {
	cases := []struct {
		variant                  Variant
		mod                      constellation.Modulation
		lut, ff, dsp, bram, uram float64 // paper's fractions
	}{
		{Baseline, constellation.QAM4, 0.29, 0.20, 0.08, 0.11, 0.14},
		{Baseline, constellation.QAM16, 0.50, 0.27, 0.15, 0.14, 0.60},
		{Optimized, constellation.QAM4, 0.11, 0.07, 0.03, 0.08, 0.07},
		{Optimized, constellation.QAM16, 0.23, 0.11, 0.07, 0.10, 0.30},
	}
	for _, c := range cases {
		d := MustNewDesign(c.variant, c.mod, 10, 10)
		u := d.Resources()
		lut, ff, dsp, bram, uram := u.Frac()
		check := func(name string, got, want float64) {
			if math.Abs(got-want) > 0.015 {
				t.Errorf("%s %v %s: %.3f, paper %.3f", c.variant, c.mod, name, got, want)
			}
		}
		check("LUT", lut, c.lut)
		check("FF", ff, c.ff)
		check("DSP", dsp, c.dsp)
		check("BRAM", bram, c.bram)
		check("URAM", uram, c.uram)
	}
}

func TestOptimizedLeavesRoomForSecondPipeline(t *testing.T) {
	// The whole point of Section III-C4: the optimized designs stay under
	// 50% on every resource so a second pipeline fits; the 16-QAM baseline
	// does not (50% LUT, 60% URAM).
	for _, mod := range []constellation.Modulation{constellation.QAM4, constellation.QAM16} {
		opt := MustNewDesign(Optimized, mod, 10, 10)
		if got := opt.MaxPipelines(); got < 2 {
			t.Errorf("optimized %v: MaxPipelines = %d, want >= 2", mod, got)
		}
	}
	base16 := MustNewDesign(Baseline, constellation.QAM16, 10, 10)
	if got := base16.MaxPipelines(); got != 1 {
		t.Errorf("baseline 16-QAM: MaxPipelines = %d, want 1", got)
	}
}

func TestURAMScalesWithModulationSquared(t *testing.T) {
	// Section IV-E: the tree state matrix size is 4·Modulation²·N, so
	// 16-QAM consumes ~16× the variable URAM of 4-QAM.
	d4 := MustNewDesign(Optimized, constellation.QAM4, 10, 10)
	d16 := MustNewDesign(Optimized, constellation.QAM16, 10, 10)
	c := coeffs[Optimized]
	v4 := float64(d4.Resources().URAMs) - c.uramFixed
	v16 := float64(d16.Resources().URAMs) - c.uramFixed
	ratio := v16 / v4
	if ratio < 12 || ratio > 20 {
		t.Fatalf("URAM variable ratio %.1f, want ~16", ratio)
	}
}

func TestResourcesScaleWithN(t *testing.T) {
	small := MustNewDesign(Optimized, constellation.QAM4, 10, 10).Resources()
	large := MustNewDesign(Optimized, constellation.QAM4, 20, 20).Resources()
	if large.URAMs <= small.URAMs {
		t.Fatal("URAM did not grow with N")
	}
	if large.LUTs != small.LUTs {
		t.Fatal("logic should not depend on N in this model")
	}
}

func TestFitsAndOverflow(t *testing.T) {
	ok := MustNewDesign(Optimized, constellation.QAM16, 10, 10).Resources()
	if !ok.Fits() {
		t.Fatal("optimized 16-QAM should fit")
	}
	// 64-QAM baseline: URAM demand explodes with P² and must not fit.
	big := MustNewDesign(Baseline, constellation.QAM64, 10, 10).Resources()
	if big.Fits() {
		t.Fatalf("baseline 64-QAM should overflow the device: %v", big)
	}
}

func TestUtilizationString(t *testing.T) {
	s := MustNewDesign(Optimized, constellation.QAM4, 10, 10).Resources().String()
	if s == "" {
		t.Fatal("empty utilization string")
	}
}

// traceFor synthesizes an aggregate trace resembling a sorted-DFS run:
// nodes expansions with average depth m/2.
func traceFor(nodes int64, m, p int) decoder.Counters {
	return decoder.Counters{
		NodesExpanded:     nodes,
		ChildrenGenerated: nodes * int64(p),
		EvalDepthSum:      nodes * int64(m) / 2,
		IrregularLoads:    nodes * int64(m) / 2,
		LeavesReached:     nodes / 10,
	}
}

func TestBatchTimeAnchor10x10(t *testing.T) {
	// Calibration anchor: 10×10 4-QAM at 4 dB explores ~70 nodes/vector
	// (measured); a 1000-vector batch on the optimized design should land
	// near Table II's 2 ms (within 2x either way).
	d := MustNewDesign(Optimized, constellation.QAM4, 10, 10)
	w := Workload{M: 10, N: 10, P: 4, Frames: 1000}
	dur, b, err := d.BatchTime(w, traceFor(70_000, 10, 4))
	if err != nil {
		t.Fatal(err)
	}
	if dur < 500*time.Microsecond || dur > 4*time.Millisecond {
		t.Fatalf("optimized batch time %v, want ~2 ms", dur)
	}
	if b.Gather != 0 {
		t.Fatal("optimized design must hide gather cycles")
	}
	if b.Total() <= 0 {
		t.Fatal("empty breakdown")
	}
}

func TestBaselineSlowerThanOptimized(t *testing.T) {
	w := Workload{M: 10, N: 10, P: 4, Frames: 1000}
	trace := traceFor(70_000, 10, 4)
	opt, _, err := MustNewDesign(Optimized, constellation.QAM4, 10, 10).BatchTime(w, trace)
	if err != nil {
		t.Fatal(err)
	}
	base, bb, err := MustNewDesign(Baseline, constellation.QAM4, 10, 10).BatchTime(w, trace)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(base) / float64(opt)
	if ratio < 2 || ratio > 8 {
		t.Fatalf("baseline/optimized ratio %.2f, want ~3-4 (paper: 5x vs 1.4x of CPU)", ratio)
	}
	if bb.Gather == 0 {
		t.Fatal("baseline must pay gather stalls")
	}
}

func TestBatchTimeScalesWithNodes(t *testing.T) {
	d := MustNewDesign(Optimized, constellation.QAM4, 10, 10)
	w := Workload{M: 10, N: 10, P: 4, Frames: 1000}
	t1, _, err := d.BatchTime(w, traceFor(10_000, 10, 4))
	if err != nil {
		t.Fatal(err)
	}
	t2, _, err := d.BatchTime(w, traceFor(100_000, 10, 4))
	if err != nil {
		t.Fatal(err)
	}
	if t2 < 5*t1 {
		t.Fatalf("time not ~linear in nodes: %v vs %v", t1, t2)
	}
}

func TestTwoPipelinesNearlyHalveTime(t *testing.T) {
	w := Workload{M: 10, N: 10, P: 4, Frames: 1000}
	trace := traceFor(200_000, 10, 4)
	one := MustNewDesign(Optimized, constellation.QAM4, 10, 10)
	two := MustNewDesign(Optimized, constellation.QAM4, 10, 10)
	two.Pipelines = 2
	t1, _, err := one.BatchTime(w, trace)
	if err != nil {
		t.Fatal(err)
	}
	t2, _, err := two.BatchTime(w, trace)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(t1) / float64(t2)
	if ratio < 1.7 || ratio > 2.05 {
		t.Fatalf("2-pipeline speedup %.2f, want ~2", ratio)
	}
}

func TestBatchTimeRejectsBadWorkload(t *testing.T) {
	d := MustNewDesign(Optimized, constellation.QAM4, 10, 10)
	if _, _, err := d.BatchTime(Workload{M: 0, N: 10, P: 4, Frames: 1}, decoder.Counters{}); err == nil {
		t.Error("M=0 accepted")
	}
	if _, _, err := d.BatchTime(Workload{M: 10, N: 10, P: 1, Frames: 1}, decoder.Counters{}); err == nil {
		t.Error("P=1 accepted")
	}
	if _, _, err := d.BatchTime(Workload{M: 10, N: 10, P: 4, Frames: 0}, decoder.Counters{}); err == nil {
		t.Error("zero frames accepted")
	}
}

func TestPowerReproducesTableII(t *testing.T) {
	cases := []struct {
		mod  constellation.Modulation
		m, n int
		want float64
	}{
		{constellation.QAM4, 10, 10, 8},
		{constellation.QAM4, 15, 15, 11.7},
		{constellation.QAM4, 20, 20, 12},
		{constellation.QAM16, 10, 10, 12.8},
	}
	for _, c := range cases {
		d := MustNewDesign(Optimized, c.mod, c.m, c.n)
		got := d.Power()
		// Within 20% of the paper's Vitis Analyzer measurement.
		if math.Abs(got-c.want)/c.want > 0.20 {
			t.Errorf("%v %dx%d: power %.2f W, paper %.1f W", c.mod, c.m, c.n, got, c.want)
		}
	}
}

func TestPowerFarBelowCPUClass(t *testing.T) {
	// Every modeled FPGA configuration must stay an order of magnitude
	// below the CPU's 82–142 W (Table II).
	for _, mod := range []constellation.Modulation{constellation.QAM4, constellation.QAM16} {
		for _, n := range []int{10, 15, 20} {
			d := MustNewDesign(Optimized, mod, n, n)
			if p := d.Power(); p < 3 || p > 25 {
				t.Errorf("%v %dx%d: power %.1f W out of FPGA class", mod, n, n, p)
			}
		}
	}
}

func TestEnergy(t *testing.T) {
	d := MustNewDesign(Optimized, constellation.QAM4, 10, 10)
	if e := d.Energy(2); math.Abs(e-2*d.Power()) > 1e-9 {
		t.Fatalf("Energy(2s) = %v", e)
	}
}

func TestSortStages(t *testing.T) {
	cases := map[int]int{2: 1, 4: 3, 8: 6, 16: 10, 64: 21}
	for p, want := range cases {
		if got := sortStages(p); got != want {
			t.Errorf("sortStages(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestRetargetToU250(t *testing.T) {
	// The same design retargeted to the larger U250 must report lower
	// fractional utilization and at least as much replication headroom.
	for _, mod := range []constellation.Modulation{constellation.QAM4, constellation.QAM16} {
		d280 := MustNewDesign(Optimized, mod, 10, 10)
		d250 := MustNewDesign(Optimized, mod, 10, 10)
		d250.Device = U250
		u280 := d280.Resources()
		u250 := d250.Resources()
		l280, _, _, _, ur280 := u280.Frac()
		l250, _, _, _, ur250 := u250.Frac()
		if l250 >= l280 || ur250 >= ur280 {
			t.Errorf("%v: U250 fractions not lower (LUT %.3f vs %.3f, URAM %.3f vs %.3f)",
				mod, l250, l280, ur250, ur280)
		}
		if d250.MaxPipelines() < d280.MaxPipelines() {
			t.Errorf("%v: U250 headroom %d below U280's %d", mod, d250.MaxPipelines(), d280.MaxPipelines())
		}
	}
	// Absolute consumption is device-independent.
	a := MustNewDesign(Baseline, constellation.QAM16, 10, 10)
	b := MustNewDesign(Baseline, constellation.QAM16, 10, 10)
	b.Device = U250
	if a.Resources().URAMs != b.Resources().URAMs {
		t.Error("absolute URAM usage changed with the device")
	}
}

func TestDesignName(t *testing.T) {
	d := MustNewDesign(Optimized, constellation.QAM4, 10, 10)
	if d.Name() != "FPGA-optimized(4-QAM,10x10)" {
		t.Fatalf("name = %q", d.Name())
	}
}
