package fpga

import (
	"fmt"
	"time"
)

// TransferModel prices moving the decode inputs onto the card. The paper
// measures the one-time PCIe→HBM ingress at under 3% of execution time
// (Section III-B); this model lets tests verify the claim holds for the
// reproduced workloads instead of taking it on faith.
type TransferModel struct {
	// PCIeGBs is the effective host→card bandwidth (PCIe Gen3 x16 after
	// protocol overhead).
	PCIeGBs float64
	// ChannelReuse is the number of received vectors that share one
	// channel estimate (the block-fading coherence interval): H crosses
	// PCIe once per block, only the y vectors stream per frame. Zero means
	// a fresh H per frame (worst case).
	ChannelReuse int
}

// NewTransfer returns the default model: PCIe Gen3 x16 at 12 GB/s
// effective, block fading with the whole batch sharing one channel
// estimate — the deployment the paper targets, where the channel is
// estimated per coherence interval, not per symbol vector.
func NewTransfer() TransferModel {
	return TransferModel{PCIeGBs: 12, ChannelReuse: 0x7fffffff}
}

// complexBytes is the wire size of one complex sample (2 × float32 in the
// FPGA's native format).
const complexBytes = 8

// IngressBytes returns the host→card payload for a workload: channel
// matrices (N×M complex each, one per reuse block) plus one received vector
// (N complex) per frame.
func (t TransferModel) IngressBytes(w Workload) int64 {
	reuse := t.ChannelReuse
	if reuse < 1 {
		reuse = 1
	}
	blocks := (w.Frames + reuse - 1) / reuse
	hBytes := int64(blocks) * int64(w.N) * int64(w.M) * complexBytes
	yBytes := int64(w.Frames) * int64(w.N) * complexBytes
	return hBytes + yBytes
}

// IngressTime returns the PCIe transfer time for the workload.
func (t TransferModel) IngressTime(w Workload) (time.Duration, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if t.PCIeGBs <= 0 {
		return 0, fmt.Errorf("fpga: non-positive PCIe bandwidth %v", t.PCIeGBs)
	}
	seconds := float64(t.IngressBytes(w)) / (t.PCIeGBs * 1e9)
	return time.Duration(seconds * float64(time.Second)), nil
}

// TransferFraction returns ingress time as a fraction of the decode time —
// the quantity the paper bounds below 3%.
func (t TransferModel) TransferFraction(w Workload, decode time.Duration) (float64, error) {
	ingress, err := t.IngressTime(w)
	if err != nil {
		return 0, err
	}
	if decode <= 0 {
		return 0, fmt.Errorf("fpga: non-positive decode time %v", decode)
	}
	return float64(ingress) / float64(decode), nil
}
