package fpga

import (
	"fmt"
	"time"

	"repro/internal/decoder"
)

// CycleBreakdown attributes simulated cycles to the pipeline modules of
// Fig. 4. It is the output of the cycle-approximate timing model.
type CycleBreakdown struct {
	// Branch covers child generation and tree-state matrix updates.
	Branch int64
	// Gather covers irregular tree-state reads. Zero for the optimized
	// design: the pre-fetching unit's double buffering hides them under
	// compute (Section III-C2).
	Gather int64
	// Eval covers the systolic GEMM engine plus the NORM module.
	Eval int64
	// Sort covers the pruning sorter (phase 3).
	Sort int64
	// Control covers list pop/push, radius updates, and sequencing.
	Control int64
	// Fill covers per-frame pipeline fill/drain and the one-time HBM
	// ingress (measured <3% in the paper; modeled per frame).
	Fill int64
}

// Total sums all modules.
func (b CycleBreakdown) Total() int64 {
	return b.Branch + b.Gather + b.Eval + b.Sort + b.Control + b.Fill
}

// Workload aliases the shared batch-job descriptor; see decoder.Workload.
type Workload = decoder.Workload

// Timing model constants. The structure comes from the architecture in
// Section III; the magnitudes are chosen so the optimized design reproduces
// Table II's FPGA execution times for the anchor workloads (10×10 4-QAM
// ≈ 2 ms per 1000-vector batch at 4 dB) and the baseline lands at the
// paper's "comparable to CPU, ~1.4× faster" position.
const (
	// optDepthLanes is the systolic array depth of the optimized GEMM
	// engine: dot products up to this length complete one child per cycle.
	optDepthLanes = 16
	// baseDepthLanes is the baseline engine depth (generic Vitis BLAS
	// configuration, half the custom engine).
	baseDepthLanes = 8
	// baseLaneShare: the baseline engine evaluates children over P/2 lanes,
	// so each expansion needs 2 evaluation rounds.
	baseEvalRounds = 2
	// gatherCyclesPerLoad is the per-element stall of un-prefetched
	// irregular tree-state reads in the baseline design.
	gatherCyclesPerLoad = 2
	// optSortVisibility is the fraction of the pipelined bitonic sorter's
	// latency that is exposed in the optimized design: the next pop depends
	// on the sorted order, so the latency is not hidden under DFS.
	optSortVisibility = 1.0
	// control cycles per expansion.
	optControlCycles  = 3
	baseControlCycles = 4
	// fill cycles per frame (pipeline fill/drain + streaming ingress).
	fillCyclesPerFrame = 48
)

// BatchTime converts an aggregate operation trace into simulated decode time
// for a batch, together with the per-module cycle attribution. The trace
// must come from the same search the FPGA would perform (the repository's
// sphere decoder with SortedDFS), so the SNR→work relationship is real; only
// the cycles-per-operation mapping is modeled.
func (d *Design) BatchTime(w Workload, c decoder.Counters) (time.Duration, CycleBreakdown, error) {
	if err := w.Validate(); err != nil {
		return 0, CycleBreakdown{}, err
	}
	if c.NodesExpanded < 0 {
		return 0, CycleBreakdown{}, fmt.Errorf("fpga: negative node count")
	}
	nodes := c.NodesExpanded
	var b CycleBreakdown
	// Average PD dot-product depth per expansion, from the exact trace.
	avgDepth := 1.0
	if nodes > 0 {
		avgDepth = float64(c.EvalDepthSum) / float64(nodes)
	}

	switch d.Variant {
	case Optimized:
		// One evaluation lane per child: each expansion takes as many
		// engine rounds as the dot-product depth needs array passes.
		rounds := int64(1 + (avgDepth-1)/optDepthLanes)
		b.Branch = nodes // tree-state update, II=1
		b.Eval = nodes * rounds
		b.Sort = int64(float64(nodes) * float64(sortStages(w.P)) * optSortVisibility)
		b.Control = nodes * optControlCycles
		// Gather: hidden by the pre-fetch unit's double buffering.
		b.Gather = 0
	case Baseline:
		rounds := int64(1+(avgDepth-1)/baseDepthLanes) * baseEvalRounds
		b.Branch = nodes * 2 // generic control re-walks state
		b.Eval = nodes * rounds
		b.Sort = nodes * int64(sortStages(w.P)) * 2 // unpipelined comparator net
		b.Control = nodes * baseControlCycles
		b.Gather = c.IrregularLoads * gatherCyclesPerLoad
	default:
		return 0, CycleBreakdown{}, fmt.Errorf("fpga: unknown variant %d", d.Variant)
	}
	b.Fill = int64(w.Frames) * fillCyclesPerFrame

	cycles := b.Total()
	if d.Pipelines > 1 {
		// Replicated pipelines split the batch; fill is per pipeline.
		cycles = cycles/int64(d.Pipelines) + b.Fill - b.Fill/int64(d.Pipelines)
	}
	seconds := float64(cycles) / d.Variant.ClockHz()
	return time.Duration(seconds * float64(time.Second)), b, nil
}
