package fpga

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/cmatrix"
	"repro/internal/constellation"
	"repro/internal/rng"
	"repro/internal/sphere"
)

// tracedRun decodes a batch with the sorted-DFS decoder, recording both the
// aggregate counters and the per-expansion depth trace.
func tracedRun(t *testing.T, mod constellation.Modulation, m, n, frames int, snr float64) (Workload, *ExpansionTrace, int64) {
	t.Helper()
	cons := constellation.New(mod)
	trace := &ExpansionTrace{}
	sd := sphere.MustNew(sphere.Config{
		Const:    cons,
		Strategy: sphere.SortedDFS,
		OnExpand: trace.Hook(),
	})
	r := rng.New(42)
	var nodes int64
	for i := 0; i < frames; i++ {
		h := channel.Rayleigh(r, n, m)
		s := make(cmatrix.Vector, m)
		for j := range s {
			s[j] = cons.Symbol(r.Intn(cons.Size()))
		}
		nv := channel.NoiseVariance(channel.PerTransmitSymbol, snr, m)
		y := channel.Transmit(r, h, s, nv)
		res, err := sd.Decode(h, y, nv)
		if err != nil {
			t.Fatal(err)
		}
		nodes += res.Counters.NodesExpanded
	}
	return Workload{M: m, N: n, P: cons.Size(), Frames: frames}, trace, nodes
}

func TestTraceRecordsEveryExpansion(t *testing.T) {
	_, trace, nodes := tracedRun(t, constellation.QAM4, 8, 8, 20, 8)
	if int64(trace.Len()) != nodes {
		t.Fatalf("trace has %d records, search expanded %d nodes", trace.Len(), nodes)
	}
	for _, d := range trace.Depths {
		if d < 0 || d >= 8 {
			t.Fatalf("depth %d out of range", d)
		}
	}
}

func TestEventSimAgreesWithAnalyticModel(t *testing.T) {
	// The event-driven replay and the closed-form BatchTime must agree
	// within modeling tolerance (3x either way) — they encode the same
	// architecture at different abstraction levels.
	for _, variant := range []Variant{Optimized, Baseline} {
		w, trace, nodes := tracedRun(t, constellation.QAM4, 8, 8, 50, 8)
		d := MustNewDesign(variant, constellation.QAM4, 8, 8)

		avgDepth := 0.0
		for _, dep := range trace.Depths {
			avgDepth += float64(dep) + 1
		}
		avgDepth /= float64(trace.Len())
		counters := traceFor(nodes, 8, 4)
		counters.EvalDepthSum = int64(avgDepth * float64(nodes))
		counters.IrregularLoads = 0
		for _, dep := range trace.Depths {
			counters.IrregularLoads += int64(dep)
		}

		analytic, _, err := d.BatchTime(w, counters)
		if err != nil {
			t.Fatal(err)
		}
		event, _, err := d.EventSim(w, trace)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(event) / float64(analytic)
		if ratio < 1.0/3 || ratio > 3 {
			t.Fatalf("%v: event sim %v vs analytic %v (ratio %.2f)", variant, event, analytic, ratio)
		}
	}
}

func TestEventSimBaselineSlower(t *testing.T) {
	w, trace, _ := tracedRun(t, constellation.QAM4, 8, 8, 30, 8)
	opt, _, err := MustNewDesign(Optimized, constellation.QAM4, 8, 8).EventSim(w, trace)
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := MustNewDesign(Baseline, constellation.QAM4, 8, 8).EventSim(w, trace)
	if err != nil {
		t.Fatal(err)
	}
	if base <= opt {
		t.Fatalf("baseline event sim %v not slower than optimized %v", base, opt)
	}
}

func TestEventSimUtilizationReport(t *testing.T) {
	w, trace, _ := tracedRun(t, constellation.QAM16, 6, 6, 10, 10)
	_, res, err := MustNewDesign(Optimized, constellation.QAM16, 6, 6).EventSim(w, trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 6 {
		t.Fatalf("%d stages", len(res.Stages))
	}
	for i, u := range res.Utilization() {
		if u < 0 || u > 1 {
			t.Fatalf("stage %s utilization %v", res.Stages[i], u)
		}
	}
	// For 16-QAM the sort network is the long-latency stage; under
	// speculative pipelining the GEMM/branch stages should still be busy.
	if res.Utilization()[0] == 0 {
		t.Fatal("branch stage idle")
	}
}

func TestEventSimScalesWithTrace(t *testing.T) {
	w, trace, _ := tracedRun(t, constellation.QAM4, 8, 8, 10, 8)
	w.Frames = 1 // suppress the per-frame fill term so scaling is visible
	d := MustNewDesign(Optimized, constellation.QAM4, 8, 8)
	t1, _, err := d.EventSim(w, trace)
	if err != nil {
		t.Fatal(err)
	}
	// Double the trace => roughly double the time (minus fill).
	double := &ExpansionTrace{Depths: append(append([]int16{}, trace.Depths...), trace.Depths...)}
	t2, _, err := d.EventSim(w, double)
	if err != nil {
		t.Fatal(err)
	}
	if t2 < t1*3/2 {
		t.Fatalf("event sim not scaling with trace: %v -> %v", t1, t2)
	}
}

// perFrameTraces decodes frames individually, one trace per frame.
func perFrameTraces(t *testing.T, n int) (Workload, []*ExpansionTrace) {
	t.Helper()
	cons := constellation.New(constellation.QAM4)
	traces := make([]*ExpansionTrace, n)
	r := rng.New(99)
	for i := range traces {
		tr := &ExpansionTrace{}
		sd := sphere.MustNew(sphere.Config{Const: cons, Strategy: sphere.SortedDFS, OnExpand: tr.Hook()})
		h := channel.Rayleigh(r, 8, 8)
		s := make(cmatrix.Vector, 8)
		for j := range s {
			s[j] = cons.Symbol(r.Intn(4))
		}
		nv := channel.NoiseVariance(channel.PerTransmitSymbol, 6, 8)
		y := channel.Transmit(r, h, s, nv)
		if _, err := sd.Decode(h, y, nv); err != nil {
			t.Fatal(err)
		}
		traces[i] = tr
	}
	return Workload{M: 8, N: 8, P: 4, Frames: n}, traces
}

func TestEventSimMultiMatchesScheduler(t *testing.T) {
	const n = 40
	w, traces := perFrameTraces(t, n)
	d := MustNewDesign(Optimized, constellation.QAM4, 8, 8)

	// Cost each frame by its own event sim, schedule with LPT, then verify
	// the multi-pipeline event replay lands near the scheduler's makespan.
	costs := make([]int64, n)
	for i, tr := range traces {
		wi := w
		wi.Frames = 1
		dur, _, err := d.EventSim(wi, tr)
		if err != nil {
			t.Fatal(err)
		}
		costs[i] = int64(dur.Seconds() * d.Variant.ClockHz())
	}
	for _, k := range []int{1, 2, 4} {
		sched, err := ScheduleFrames(k, costs)
		if err != nil {
			t.Fatal(err)
		}
		makespan, perPipe, err := d.EventSimMulti(w, traces, sched.Assignment, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(perPipe) != k {
			t.Fatalf("%d per-pipe entries", len(perPipe))
		}
		schedMs := float64(sched.Makespan) / d.Variant.ClockHz()
		ratio := makespan.Seconds() / schedMs
		if ratio < 0.8 || ratio > 1.25 {
			t.Fatalf("k=%d: event makespan %.3gs vs scheduler %.3gs (ratio %.2f)",
				k, makespan.Seconds(), schedMs, ratio)
		}
	}
}

func TestEventSimMultiValidation(t *testing.T) {
	w, traces := perFrameTraces(t, 4)
	d := MustNewDesign(Optimized, constellation.QAM4, 8, 8)
	if _, _, err := d.EventSimMulti(w, traces, []int{0, 0, 0}, 2); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := d.EventSimMulti(w, traces, []int{0, 1, 2, 5}, 2); err == nil {
		t.Error("out-of-range assignment accepted")
	}
	if _, _, err := d.EventSimMulti(w, traces, []int{0, 0, 0, 0}, 0); err == nil {
		t.Error("zero pipelines accepted")
	}
}

func TestEventSimValidation(t *testing.T) {
	d := MustNewDesign(Optimized, constellation.QAM4, 8, 8)
	if _, _, err := d.EventSim(Workload{}, &ExpansionTrace{Depths: []int16{0}}); err == nil {
		t.Error("invalid workload accepted")
	}
	w := Workload{M: 8, N: 8, P: 4, Frames: 1}
	if _, _, err := d.EventSim(w, nil); err == nil {
		t.Error("nil trace accepted")
	}
	if _, _, err := d.EventSim(w, &ExpansionTrace{}); err == nil {
		t.Error("empty trace accepted")
	}
}
