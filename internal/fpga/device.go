// Package fpga is the hardware substitution at the heart of this
// reproduction: a cycle-approximate model of the paper's Xilinx Alveo U280
// sphere-decoder pipeline (Fig. 4). We do not own a U280, so decoding time,
// resource utilization, and power are produced by models that consume the
// *real* operation trace of the search (decoder.Counters) rather than by
// measurement. The models are calibrated against the paper's published
// numbers — Table I for resources, Table II for power — and their structure
// follows the architecture the paper describes: a branching unit, a
// pre-fetching unit with double buffering, a systolic-array GEMM engine with
// a NORM stage, a bitonic pruning sorter, and the Meta State Table in
// URAM-backed storage.
package fpga

// U280 describes the Alveo U280 resource inventory used for utilization
// percentages (paper Section IV-A and [23]).
type DeviceSpec struct {
	Name  string
	LUTs  int
	FFs   int
	DSPs  int
	BRAMs int // 18 Kb blocks
	URAMs int // 288 Kb blocks
	// HBMBandwidthGBs is the aggregate HBM bandwidth available over the 32
	// pseudo-channels.
	HBMBandwidthGBs float64
}

// U280 is the Alveo U280 card hosting the paper's designs.
var U280 = DeviceSpec{
	Name:            "Xilinx Alveo U280",
	LUTs:            1_303_680,
	FFs:             2_607_360,
	DSPs:            9_024,
	BRAMs:           4_032,
	URAMs:           960,
	HBMBandwidthGBs: 460,
}

// U250 is the larger (logic-wise) DDR-based Alveo card: more LUTs/DSPs/URAM
// but no HBM. Retargeting studies use it to ask how far the paper's designs
// scale on a bigger fabric — e.g. whether the 16-QAM baseline's URAM
// pressure relaxes, and how many replicated pipelines fit.
var U250 = DeviceSpec{
	Name:            "Xilinx Alveo U250",
	LUTs:            1_728_000,
	FFs:             3_456_000,
	DSPs:            12_288,
	BRAMs:           5_376,
	URAMs:           1_280,
	HBMBandwidthGBs: 77, // DDR4 aggregate; no HBM stacks
}

// Variant selects between the paper's two implementations.
type Variant int

const (
	// Baseline is the direct HLS port of the CPU code (Section IV-C):
	// generic Vitis BLAS engines, no pre-fetch double buffering, sequential
	// pruning sort, 253 MHz.
	Baseline Variant = iota
	// Optimized applies the Section III-C optimizations: extracted GEMM
	// engine, pre-fetching unit hiding irregular accesses, per-modulation
	// control logic, pipelined bitonic sorter, 300 MHz.
	Optimized
)

// String names the variant as in Table I.
func (v Variant) String() string {
	switch v {
	case Baseline:
		return "baseline"
	case Optimized:
		return "optimized"
	default:
		return "unknown"
	}
}

// ClockHz returns the synthesis clock of the variant (Table I).
func (v Variant) ClockHz() float64 {
	if v == Optimized {
		return 300e6
	}
	return 253e6
}
