package fpga

import (
	"fmt"
	"sort"
)

// Schedule is the result of assigning per-frame decode costs to replicated
// pipelines — the paper's future-work parallelization (Section V), enabled
// by the optimized design's sub-50% resource footprint.
type Schedule struct {
	// Makespan is the busiest pipeline's total cycles: the batch finishes
	// when it does.
	Makespan int64
	// PerPipeline holds each pipeline's assigned cycles.
	PerPipeline []int64
	// Assignment maps frame index → pipeline index.
	Assignment []int
}

// Imbalance returns makespan / (total/k): 1.0 is a perfect split.
func (s *Schedule) Imbalance() float64 {
	var total int64
	for _, c := range s.PerPipeline {
		total += c
	}
	if total == 0 {
		return 1
	}
	ideal := float64(total) / float64(len(s.PerPipeline))
	return float64(s.Makespan) / ideal
}

// ScheduleFrames distributes frames across pipelines using the
// longest-processing-time (LPT) greedy rule: frames sorted by descending
// cost, each placed on the currently least-loaded pipeline. LPT's makespan
// is within 4/3 of optimal, which matters here because sphere-decoding
// costs are heavy-tailed — a naive even split leaves one pipeline stuck
// with the pathological frames.
//
// frameCycles[i] is the simulated cycle cost of decoding frame i.
func ScheduleFrames(pipelines int, frameCycles []int64) (*Schedule, error) {
	if pipelines < 1 {
		return nil, fmt.Errorf("fpga: need at least one pipeline, got %d", pipelines)
	}
	if len(frameCycles) == 0 {
		return nil, fmt.Errorf("fpga: no frames to schedule")
	}
	for i, c := range frameCycles {
		if c < 0 {
			return nil, fmt.Errorf("fpga: negative cost for frame %d", i)
		}
	}
	idx := make([]int, len(frameCycles))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return frameCycles[idx[a]] > frameCycles[idx[b]] })

	s := &Schedule{
		PerPipeline: make([]int64, pipelines),
		Assignment:  make([]int, len(frameCycles)),
	}
	for _, frame := range idx {
		best := 0
		for p := 1; p < pipelines; p++ {
			if s.PerPipeline[p] < s.PerPipeline[best] {
				best = p
			}
		}
		s.PerPipeline[best] += frameCycles[frame]
		s.Assignment[frame] = best
	}
	for _, c := range s.PerPipeline {
		if c > s.Makespan {
			s.Makespan = c
		}
	}
	return s, nil
}

// RoundRobinSchedule is the naive comparator: frame i goes to pipeline
// i mod k. Used by tests and the replication study to quantify what LPT
// buys on heavy-tailed decode costs.
func RoundRobinSchedule(pipelines int, frameCycles []int64) (*Schedule, error) {
	if pipelines < 1 {
		return nil, fmt.Errorf("fpga: need at least one pipeline, got %d", pipelines)
	}
	if len(frameCycles) == 0 {
		return nil, fmt.Errorf("fpga: no frames to schedule")
	}
	s := &Schedule{
		PerPipeline: make([]int64, pipelines),
		Assignment:  make([]int, len(frameCycles)),
	}
	for i, c := range frameCycles {
		if c < 0 {
			return nil, fmt.Errorf("fpga: negative cost for frame %d", i)
		}
		p := i % pipelines
		s.PerPipeline[p] += c
		s.Assignment[i] = p
	}
	for _, c := range s.PerPipeline {
		if c > s.Makespan {
			s.Makespan = c
		}
	}
	return s, nil
}
