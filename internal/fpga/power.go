package fpga

// Power returns the modeled board power draw in watts while decoding.
//
// The paper measured FPGA power with Vitis Analyzer (Table II): 8 W for
// 10×10 4-QAM, 11.7 W for 15×15, 12 W for 20×20, and 12.8 W for 10×10
// 16-QAM — an order of magnitude under the CPU. The model decomposes that
// into static power plus dynamic terms proportional to the active
// evaluation lanes (P), the antenna count (datapath width and HBM traffic
// scale with N), and the active MST storage (URAM dynamic power, which
// carries the P²·N tree-state matrix). The four coefficients are solved
// exactly from Table II's four FPGA measurements.
func (d *Design) Power() float64 {
	const (
		staticW     = 3.0     // shell + HBM idle
		perLaneW    = 0.25    // evaluation lane toggling
		perAntennaW = 0.388   // datapath width + streaming traffic
		perURAMW    = 0.00817 // active MST storage beyond the fixed arrays
	)
	p := float64(d.P())
	c := coeffs[d.Variant]
	uramDynamic := c.uramPerState * p * p * float64(d.N) / 10
	w := staticW + perLaneW*p + perAntennaW*float64(d.N) + perURAMW*uramDynamic
	// Replicated pipelines replicate the dynamic portion.
	if d.Pipelines > 1 {
		w = staticW + (w-staticW)*float64(d.Pipelines)
	}
	// The baseline toggles more logic per decode (unstripped engines) but
	// runs at a lower clock; the two effects roughly cancel, and the paper
	// only reports optimized-design power, so both variants share the model.
	return w
}

// Energy returns the energy in joules for a decode lasting seconds.
func (d *Design) Energy(seconds float64) float64 {
	return d.Power() * seconds
}
