package mimosd

// Cross-package integration tests: these exercise full paths through the
// public API that no single internal package covers — facade ↔ accelerator
// consistency, end-to-end determinism, and the PHY chain from transmission
// through soft detection to channel decoding.

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/cmatrix"
	"repro/internal/constellation"
	"repro/internal/fec"
	"repro/internal/mimo"
	"repro/internal/rng"
	"repro/internal/sphere"
)

func TestAcceleratorConsistentWithSimulateTiming(t *testing.T) {
	// The accelerator's simulated batch time and SimulateTiming's
	// FPGA-optimized entry must agree when fed identical workloads (same
	// seed stream, same frame count), because both run the same search and
	// the same timing model.
	cfg := Config{TxAntennas: 8, RxAntennas: 8, Modulation: "4-QAM"}
	const frames = 80
	const snr = 8.0

	acc, err := NewAccelerator(cfg, VariantOptimized)
	if err != nil {
		t.Fatal(err)
	}
	links := make([]*Link, frames)
	for i := range links {
		l, err := RandomLink(cfg, snr, uint64(5000+i))
		if err != nil {
			t.Fatal(err)
		}
		links[i] = l
	}
	res, err := acc.DecodeBatch(links)
	if err != nil {
		t.Fatal(err)
	}
	// Not the same RNG stream as SimulateTiming, so compare only coarsely:
	// per-frame time within 3x. (The workloads are statistically identical.)
	tr, err := SimulateTiming(cfg, snr, frames, 42)
	if err != nil {
		t.Fatal(err)
	}
	var fpgaOpt float64
	for _, p := range tr.Platforms {
		if p.Platform == "FPGA-optimized" {
			fpgaOpt = p.Time.Seconds()
		}
	}
	ratio := res.SimulatedTime.Seconds() / fpgaOpt
	if ratio < 1.0/3 || ratio > 3 {
		t.Fatalf("accelerator %.6fs vs SimulateTiming %.6fs (ratio %.2f)",
			res.SimulatedTime.Seconds(), fpgaOpt, ratio)
	}
}

func TestEndToEndCodedPHYChain(t *testing.T) {
	// The full chain: message → convolutional encode → Gray mapping →
	// Rayleigh channel + AWGN → list sphere decoding (LLRs) → soft Viterbi
	// → original message. At a moderate SNR the message must round-trip
	// even when individual detections carry errors.
	mcfg := mimo.Config{Tx: 4, Rx: 4, Mod: constellation.QAM4, Convention: channel.PerTransmitSymbol}
	cons := constellation.New(mcfg.Mod)
	code := fec.MustNewConvCode(7, 0o171, 0o133)
	soft, err := sphere.NewSoft(sphere.Config{Const: cons, Strategy: sphere.SortedDFS}, 16)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(20230701)
	const frameBits = 8 // 4 antennas × 2 bits
	const snr = 4.0
	nv := channel.NoiseVariance(mcfg.Convention, snr, mcfg.Tx)

	failures := 0
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		msg := make([]int, 64)
		r.Bits(msg)
		coded, err := code.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		for len(coded)%frameBits != 0 {
			coded = append(coded, 0)
		}
		var llr []float64
		for off := 0; off < len(coded); off += frameBits {
			syms := cons.MapBits(coded[off : off+frameBits])
			h := channel.Rayleigh(r, mcfg.Rx, mcfg.Tx)
			y := channel.Transmit(r, h, cmatrix.Vector(syms), nv)
			res, err := soft.DecodeSoft(h, y, nv)
			if err != nil {
				t.Fatal(err)
			}
			llr = append(llr, res.LLR...)
		}
		dec, err := code.DecodeSoft(llr[:code.CodedLen(len(msg))])
		if err != nil {
			t.Fatal(err)
		}
		for i := range msg {
			if dec[i] != msg[i] {
				failures++
				break
			}
		}
	}
	if failures > trials/5 {
		t.Fatalf("coded round trip failed %d/%d codewords at %g dB", failures, trials, snr)
	}
}

func TestFacadeMetricsMatchAcrossAlgorithms(t *testing.T) {
	// All exact algorithms must report identical metrics per link.
	cfg := Config{TxAntennas: 5, RxAntennas: 5, Modulation: "4-QAM"}
	for seed := uint64(0); seed < 5; seed++ {
		l, err := RandomLink(cfg, 6, seed)
		if err != nil {
			t.Fatal(err)
		}
		var ref float64
		for i, alg := range []Algorithm{AlgSphereDecoder, AlgSphereBestFS, AlgSphereSQRD} {
			det, err := Detect(cfg, alg, l.H, l.Y, l.NoiseVar)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				ref = det.Metric
				continue
			}
			if math.Abs(det.Metric-ref) > 1e-6*(1+ref) {
				t.Fatalf("seed %d: %s metric %v != reference %v", seed, alg, det.Metric, ref)
			}
		}
	}
}
