#!/usr/bin/env bash
# cluster-smoke: boot a ring of real sdserver shards behind sdproxy and
# certify the fault-tolerant cluster contract end to end:
#
#   1. throughput scales when the ring grows from one shard to three
#      (gated leniently — CI boxes are noisy — via CLUSTER_MIN_SCALE),
#   2. fingerprint-affinity routing beats scatter on QR-cache locality:
#      with a frame pool larger than one shard's 64-entry cache but
#      smaller than 3x that, affinity keeps each shard's working set
#      resident while scatter thrashes every cache with the full pool,
#   3. a seeded kill/partition/stall storm drops nothing — sdload's
#      transport_errors stays 0 while shards die under it — and health
#      converges back to ok once the plan clears,
#   4. live membership works over the wire: a join answers with its
#      measured key disruption and a leave drains cleanly,
#   5. SIGINT stops the proxy gracefully and it logs final stats.
#
# Tunables (env): CLUSTER_MIN_SCALE (default 1.2) gates the 3-vs-1 shard
# throughput ratio; CLUSTER_MIN_AFFINITY_GAIN (default 0.10) gates the
# affinity-minus-scatter cache hit-rate margin. Both actual values are
# printed so a regression is visible even while the gates stay lenient.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
base=${SDCLUSTER_PORT:-18120}
shard_addrs=()
shard_urls=()
pids=()
proxy_pid=""
cleanup() {
    [ -n "$proxy_pid" ] && kill "$proxy_pid" 2>/dev/null || true
    [ -n "$proxy_pid" ] && wait "$proxy_pid" 2>/dev/null || true
    for p in "${pids[@]:-}"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    for p in "${pids[@]:-}"; do
        [ -n "$p" ] && wait "$p" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/sdserver" ./cmd/sdserver
go build -o "$tmp/sdproxy" ./cmd/sdproxy
go build -o "$tmp/sdload" ./cmd/sdload

# Heavier frames (8x8 16-QAM) make the decode — not HTTP plumbing — the
# dominant per-frame cost; one worker per shard keeps the per-shard QR
# cache a single 64-entry LRU.
shape=(-tx 8 -rx 8 -mod 16qam)
for i in 0 1 2 3; do
    addr="127.0.0.1:$((base + i))"
    shard_addrs+=("$addr")
    shard_urls+=("http://$addr")
    "$tmp/sdserver" -addr "$addr" "${shape[@]}" -workers 1 \
        -max-batch 8 -max-wait 500us -policy shed-to-linear \
        2> "$tmp/shard$i.log" &
    pids+=($!)
done
# Scaling shards: service time is a deterministic injected 8ms stall per
# frame (sleep, not CPU), so capacity grows with shard count even on a
# single-core CI box where three CPU-bound processes could never beat one.
scale_addrs=()
scale_urls=()
for i in 0 1 2; do
    addr="127.0.0.1:$((base + 20 + i))"
    scale_addrs+=("$addr")
    scale_urls+=("http://$addr")
    "$tmp/sdserver" -addr "$addr" -workers 1 \
        -max-batch 1 -max-wait 200us -policy shed-to-linear \
        -chaos "stall=1,stall-for=8ms" -chaos-seed 3 \
        2> "$tmp/scaleshard$i.log" &
    pids+=($!)
done
for addr in "${shard_addrs[@]}" "${scale_addrs[@]}"; do
    up=""
    for _ in $(seq 1 100); do
        if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then up=1; break; fi
        sleep 0.1
    done
    [ "${up:-}" = 1 ] || { echo "cluster-smoke: shard $addr never came up" >&2; exit 1; }
done

ring3="${shard_urls[0]},${shard_urls[1]},${shard_urls[2]}"
proxy_addr="127.0.0.1:$((base + 10))"

start_proxy() { # start_proxy <args...>; sets proxy_pid
    "$tmp/sdproxy" -addr "$proxy_addr" "$@" 2> "$tmp/proxy.log" &
    proxy_pid=$!
    local up=""
    for _ in $(seq 1 100); do
        if curl -fsS "http://$proxy_addr/healthz" >/dev/null 2>&1; then up=1; break; fi
        sleep 0.1
    done
    [ "${up:-}" = 1 ] || {
        echo "cluster-smoke: sdproxy never came up" >&2
        cat "$tmp/proxy.log" >&2
        exit 1
    }
}
stop_proxy() {
    kill "$proxy_pid" 2>/dev/null || true
    wait "$proxy_pid" 2>/dev/null || true
    proxy_pid=""
}

json_field() { # json_field <file> <key>  -> first integer value of "key"
    tr ',{}' '\n' < "$1" | grep "\"$2\"" | head -1 | grep -o '[0-9][0-9]*' | head -1
}
rps() { # rps <sdload-json>
    tr ',{}' '\n' < "$1" | grep '"throughput_rps"' | head -1 | sed 's/.*: *//'
}
cache_totals() { # cache_totals -> "hits misses" summed over the 3 ring shards
    local h=0 m=0 a f
    for a in "${shard_addrs[@]:0:3}"; do
        curl -fsS "http://$a/metrics" > "$tmp/shardmetrics.json"
        f=$(json_field "$tmp/shardmetrics.json" qr_cache_hits);   h=$((h + ${f:-0}))
        f=$(json_field "$tmp/shardmetrics.json" qr_cache_misses); m=$((m + ${f:-0}))
    done
    echo "$h $m"
}

# ---- 1. throughput scaling: 1 shard vs the full 3-shard ring ------------
scale_ring="${scale_urls[0]},${scale_urls[1]},${scale_urls[2]}"
start_proxy -shards "${scale_urls[0]}" -replicas 1 -routing scatter
"$tmp/sdload" -addr "http://$proxy_addr" -duration 2s -conc 24 -pool 64 \
    -min-ok 1 -patience 10s -seed 21 -json > "$tmp/one.json"
stop_proxy
start_proxy -shards "$scale_ring" -replicas 2 -routing scatter
"$tmp/sdload" -addr "http://$proxy_addr" -duration 2s -conc 24 -pool 64 \
    -min-ok 1 -patience 10s -seed 21 -json > "$tmp/three.json"
one=$(rps "$tmp/one.json")
three=$(rps "$tmp/three.json")
min_scale=${CLUSTER_MIN_SCALE:-1.2}
scale=$(awk -v a="$three" -v b="$one" 'BEGIN { printf "%.2f", (b > 0 ? a / b : 0) }')
echo "cluster-smoke: scaling 1->3 shards: ${one%%.*} -> ${three%%.*} rps (x$scale, gate x$min_scale)"
awk -v s="$scale" -v m="$min_scale" 'BEGIN { exit !(s >= m) }' || {
    echo "cluster-smoke: 3-shard ring only x$scale over one shard (need x$min_scale; tune CLUSTER_MIN_SCALE for slow boxes)" >&2
    exit 1
}
stop_proxy

# ---- 2. cache locality: affinity routing vs scatter ---------------------
# 151 distinct channels (coprime with the ring size, so scatter's rotation
# shows every shard the whole pool): scatter thrashes the 64-entry caches,
# affinity pins ~50 channels per shard and they stay resident. Scatter
# runs first so its leftovers cannot warm the affinity pass's caches the
# wrong way around.
read -r h0 m0 <<< "$(cache_totals)"
start_proxy -shards "$ring3" -replicas 2 -routing scatter
"$tmp/sdload" -addr "http://$proxy_addr" -duration 2s -conc 12 -pool 151 \
    -min-ok 1 -patience 10s -seed 33 -json > "$tmp/scatter.json"
stop_proxy
read -r h1 m1 <<< "$(cache_totals)"
start_proxy -shards "$ring3" -replicas 2 -routing affinity
"$tmp/sdload" -addr "http://$proxy_addr" -duration 2s -conc 12 -pool 151 \
    -min-ok 1 -patience 10s -seed 33 -json > "$tmp/affinity.json"
stop_proxy
read -r h2 m2 <<< "$(cache_totals)"
min_gain=${CLUSTER_MIN_AFFINITY_GAIN:-0.10}
rates=$(awk -v sh=$((h1 - h0)) -v sm=$((m1 - m0)) -v ah=$((h2 - h1)) -v am=$((m2 - m1)) \
    'BEGIN {
        sr = (sh + sm > 0) ? sh / (sh + sm) : 0
        ar = (ah + am > 0) ? ah / (ah + am) : 0
        printf "%.3f %.3f", sr, ar
    }')
read -r scatter_rate affinity_rate <<< "$rates"
echo "cluster-smoke: QR-cache hit rate: scatter $scatter_rate, affinity $affinity_rate (gate: gap >= $min_gain)"
awk -v s="$scatter_rate" -v a="$affinity_rate" -v g="$min_gain" 'BEGIN { exit !(a >= s + g) }' || {
    echo "cluster-smoke: affinity routing did not beat scatter on cache locality" >&2
    exit 1
}

# ---- 3. seeded chaos storm: zero drops, then health back to ok ----------
start_proxy -shards "$ring3" -replicas 2 -attempt-timeout 150ms \
    -probe-interval 25ms -dark-after 2 \
    -breaker-threshold 2 -breaker-cooldown 20ms -breaker-cooldown-cap 100ms \
    -chaos "kill=0@1s+1200ms,partition=1@1500ms+1s,stall=2@500ms+2s,stall-for=1ms" \
    -chaos-seed 7
"$tmp/sdload" -addr "http://$proxy_addr" -duration 3500ms -conc 8 -pool 64 \
    -min-ok 1 -patience 10s -seed 44 -json > "$tmp/storm.json"
grep -q '"transport_errors": 0' "$tmp/storm.json" || {
    echo "cluster-smoke: frames dropped without an HTTP answer during the storm" >&2
    cat "$tmp/storm.json" >&2
    exit 1
}
curl -fsS "http://$proxy_addr/metrics" > "$tmp/proxymetrics.json"
failovers=$(json_field "$tmp/proxymetrics.json" failovers)
dark=$(json_field "$tmp/proxymetrics.json" dark_skips)
breaker=$(json_field "$tmp/proxymetrics.json" breaker_skips)
[ "$((${failovers:-0} + ${dark:-0} + ${breaker:-0}))" -gt 0 ] || {
    echo "cluster-smoke: the storm never forced a failover or skip (failovers=$failovers dark=$dark breaker=$breaker)" >&2
    exit 1
}
up=""
for _ in $(seq 1 100); do
    if curl -fsS "http://$proxy_addr/healthz" 2>/dev/null | grep -q '"status":"ok"'; then
        up=1
        break
    fi
    sleep 0.1
done
[ "${up:-}" = 1 ] || {
    echo "cluster-smoke: cluster health never returned to ok after the storm" >&2
    curl -sS "http://$proxy_addr/healthz" >&2 || true
    exit 1
}
echo "cluster-smoke: storm survived with zero drops (failovers=${failovers:-0} dark_skips=${dark:-0} breaker_skips=${breaker:-0})"

# ---- 4. live membership over the wire -----------------------------------
curl -fsS -X POST "http://$proxy_addr/v1/shards" \
    -H 'Content-Type: application/json' \
    -d "{\"url\":\"${shard_urls[3]}\"}" > "$tmp/join.json"
grep -q '"moved"' "$tmp/join.json" || {
    echo "cluster-smoke: join did not report its key disruption" >&2
    cat "$tmp/join.json" >&2
    exit 1
}
"$tmp/sdload" -addr "http://$proxy_addr" -duration 500ms -conc 4 -pool 32 \
    -min-ok 1 -patience 5s -seed 55 -json > "$tmp/joined.json"
grep -q '"transport_errors": 0' "$tmp/joined.json" || {
    echo "cluster-smoke: drops while serving on the grown ring" >&2
    exit 1
}
curl -fsS -X DELETE "http://$proxy_addr/v1/shards?url=${shard_urls[3]}" > "$tmp/leave.json"
grep -q "\"${shard_urls[3]}\"" "$tmp/leave.json" || {
    echo "cluster-smoke: leave did not acknowledge the departed shard" >&2
    cat "$tmp/leave.json" >&2
    exit 1
}
echo "cluster-smoke: join/leave cycled a fourth shard with zero drops"

# ---- 5. graceful drain ---------------------------------------------------
kill -INT "$proxy_pid"
wait "$proxy_pid" 2>/dev/null || true
proxy_pid=""
grep -q 'final stats' "$tmp/proxy.log" || {
    echo "cluster-smoke: sdproxy did not log final stats on drain" >&2
    cat "$tmp/proxy.log" >&2
    exit 1
}
echo "cluster-smoke: OK"
