#!/usr/bin/env bash
# sdc-smoke: boot sdserver with the full integrity stack armed
# (-verify-gemm ABFT checksums, verify-on-hit QR cache, re-encode result
# audit) and a seeded silent-data-corruption plan (-sdc-chaos) flipping
# mantissa bits in cached QR payloads, GEMM outputs, and reported
# metrics, then assert the SDC defense contract end to end:
#
#   1. every injected corruption that lands is detected: the per-site
#      detection counters cover the plan's ground-truth landed counts
#      (detected >= landed for gemm and metric-audit; qr-cache evictions
#      land in (0, landed] — an entry corrupted twice before its next
#      cache hit is one eviction),
#   2. zero corrupted frames are served as exact: the static-dense
#      scenario runs UNDER the storm with its SLO gates live (exact
#      fraction >= 0.95, BER ceiling, served BER <= ZF) — a corruption
#      that escaped detection would serve wrong symbols marked exact and
#      blow the BER gates,
#   3. once the plan clears, health returns to ok,
#   4. SIGINT drains gracefully and the final stats line carries the
#      landed counts that close the loop on assertion 1.
#
# The plan is seeded, so the same faults land every run. Quarantine (the
# give-up state for a worker whose SDC rate blows its per-window budget)
# is soak-tested in internal/serve/sdc_test.go; here the limit is raised
# out of the way so the single worker survives the whole storm.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
addr="127.0.0.1:${SDSERVER_PORT:-18104}"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/sdserver" ./cmd/sdserver
go build -o "$tmp/sdload" ./cmd/sdload

# One worker keeps the shared fault plan's roll stream serial (and so
# deterministic for a given seed); the rates land roughly one corruption
# in four backend calls until the plan has rolled 150 calls, well inside
# the static-dense scenario, so the storm is over before the calm wave.
"$tmp/sdserver" -addr "$addr" -max-batch 16 -max-wait 1ms -workers 1 \
    -policy shed-to-linear \
    -verify-gemm \
    -sdc-chaos "qr=0.08,gemm=0.1,metric=0.08,clear-after=150" \
    -chaos-seed 7 \
    -sdc-quarantine 100000 \
    2> "$tmp/server.log" &
pid=$!

# Wave 1: the coherent OFDM grid through the storm. The exit status IS
# the no-corrupt-frames-served assertion: runScenario fails on any SLO
# violation, and a served corruption means wrong exact symbols -> BER
# above the ZF baseline. Coherent traffic also keeps the QR cache hot,
# so the plan's qr-cache corruptions have entries to land on.
"$tmp/sdload" -addr "http://$addr" -scenario static-dense -seed 1 -conc 8 \
    -min-ok 1 -patience 10s -json > "$tmp/storm.json" || {
    echo "sdc-smoke: static-dense failed its gates under the SDC storm" >&2
    cat "$tmp/storm.json" >&2
    exit 1
}
grep -q '"slo_violations": \[\]' "$tmp/storm.json" || {
    echo "sdc-smoke: SLO violations under the SDC storm" >&2
    cat "$tmp/storm.json" >&2
    exit 1
}

# Wave 2: clean traffic that rolls the plan past clear-after (if wave 1
# did not already) and proves nothing is dropped once the storm ends.
"$tmp/sdload" -addr "http://$addr" -duration 2s -conc 8 -min-ok 1 \
    -patience 10s -seed 13 -json > "$tmp/calm.json"
grep -q '"transport_errors": 0' "$tmp/calm.json" || {
    echo "sdc-smoke: requests dropped without an HTTP answer after the storm" >&2
    cat "$tmp/calm.json" >&2
    exit 1
}

# Health must have recovered once the plan went quiet.
up=""
for _ in $(seq 1 50); do
    if curl -fsS "http://$addr/healthz" 2>/dev/null | grep -q '"status":"ok"'; then
        up=1
        break
    fi
    sleep 0.1
done
[ "${up:-}" = 1 ] || {
    echo "sdc-smoke: health never returned to ok after the SDC storm" >&2
    curl -sS "http://$addr/healthz" >&2 || true
    exit 1
}

# Every detection site must have fired: the storm exercised all three
# defense layers, and every detection was neutralized before serving.
curl -fsS "http://$addr/metrics?format=prometheus" > "$tmp/metrics.prom"
prom() { # prom <metric-line-prefix> -> integer value (0 if absent)
    grep -F "$1" "$tmp/metrics.prom" | grep -v '^#' | awk '{print int($2)}' | head -1
}
det_gemm=$(prom 'mimosd_sdc_detected_total{site="gemm"}')
det_metric=$(prom 'mimosd_sdc_detected_total{site="metric-audit"}')
det_qr=$(prom 'mimosd_sdc_detected_total{site="qr-cache"}')
evictions=$(prom 'mimosd_qr_cache_sdc_evictions_total')
recovered=$(prom 'mimosd_sdc_recovered_total')
for pair in "gemm:$det_gemm" "metric-audit:$det_metric" "qr-cache:$det_qr"; do
    [ "${pair#*:}" -gt 0 ] 2>/dev/null || {
        echo "sdc-smoke: no detections at site ${pair%%:*} (gemm=$det_gemm metric-audit=$det_metric qr-cache=$det_qr)" >&2
        exit 1
    }
done
[ "${evictions:-0}" -gt 0 ] || {
    echo "sdc-smoke: verify-on-hit never evicted a corrupted QR entry" >&2
    exit 1
}
[ "${recovered:-0}" -gt 0 ] || {
    echo "sdc-smoke: no detected corruption was recovered (recovered=${recovered:-?})" >&2
    exit 1
}

# Graceful drain; the final stats line carries the plan's ground truth.
kill -INT "$pid"
wait "$pid"
pid=""
final=$(grep 'final stats' "$tmp/server.log") || {
    echo "sdc-smoke: server did not log final stats on drain" >&2
    cat "$tmp/server.log" >&2
    exit 1
}
landed() { # landed <site> -> count from the sdc_landed ground-truth map
    echo "$final" | grep -o '"sdc_landed":{[^}]*}' | grep -o "\"$1\":[0-9]*" | cut -d: -f2
}
land_gemm=$(landed gemm)
land_metric=$(landed metric-audit)
land_qr=$(landed qr-cache)
echo "sdc-smoke: landed gemm=$land_gemm metric=$land_metric qr=$land_qr;" \
    "detected gemm=$det_gemm metric=$det_metric qr=$det_qr evictions=$evictions"
[ "${land_gemm:-0}" -gt 0 ] && [ "${land_metric:-0}" -gt 0 ] && [ "${land_qr:-0}" -gt 0 ] || {
    echo "sdc-smoke: plan never landed at every site — raise the rates or clear-after" >&2
    exit 1
}
# Detection covers every reachable landing. The Prometheus scrape above
# ran before the drain, so compare against it (counters only grow).
[ "$det_gemm" -ge "$land_gemm" ] || {
    echo "sdc-smoke: gemm detections $det_gemm < landed $land_gemm — a GEMM corruption escaped the ABFT check" >&2
    exit 1
}
[ "$det_metric" -ge "$land_metric" ] || {
    echo "sdc-smoke: metric-audit detections $det_metric < landed $land_metric — a corrupted metric escaped the re-encode audit" >&2
    exit 1
}
[ "$det_qr" -le "$land_qr" ] || {
    echo "sdc-smoke: qr-cache detections $det_qr exceed landed $land_qr — false positives in verify-on-hit" >&2
    exit 1
}
echo "sdc-smoke: OK"
