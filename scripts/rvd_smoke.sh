#!/usr/bin/env bash
# rvd-smoke: certify the real-valued Schnorr–Euchner hot path end to end:
#
#   1. sdbench's rvd study must beat the complex SortedDFS+GEMM engine by at
#      least RVD_MIN_SPEEDUP (default 1.3x), measured side-by-side in one
#      process so machine noise cancels, with zero comparator/sorting work
#      (SE child enumeration is analytic) and zero allocations per decode,
#   2. an sdserver booted with -strategy rvd-se -norm linf must advertise
#      the engine on /v1/config and decode live sdload traffic with it.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
port=${SDRVD_PORT:-18230}
addr="127.0.0.1:$port"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    [ -n "$server_pid" ] && wait "$server_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

min_speedup=${RVD_MIN_SPEEDUP:-1.3}

# ---- 1. hot-path gate: speedup, comparator-free, zero-alloc --------------
go run ./cmd/sdbench -study rvd -out "$tmp/bench.json" \
    -gate-rvd-speedup "$min_speedup"
echo "rvd-smoke: sdbench gate ok (>= ${min_speedup}x, 0 compare ops, 0 allocs)"

# ---- 2. serving wire-up: the engine is selectable and serves traffic -----
go build -o "$tmp/sdserver" ./cmd/sdserver
go build -o "$tmp/sdload" ./cmd/sdload

"$tmp/sdserver" -addr "$addr" -workers 1 -strategy rvd-se -norm linf \
    2> "$tmp/server.log" &
server_pid=$!
up=""
for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then up=1; break; fi
    sleep 0.1
done
[ "${up:-}" = 1 ] || {
    echo "rvd-smoke: sdserver never came up" >&2
    cat "$tmp/server.log" >&2
    exit 1
}

cfg="$(curl -fsS "http://$addr/v1/config")"
echo "$cfg" | grep -q '"strategy":"SD-RVD-SE"' || {
    echo "rvd-smoke: /v1/config does not advertise SD-RVD-SE: $cfg" >&2
    exit 1
}
echo "$cfg" | grep -q '"norm":"linf"' || {
    echo "rvd-smoke: /v1/config does not advertise linf: $cfg" >&2
    exit 1
}

"$tmp/sdload" -addr "http://$addr" -duration 1s -conc 4 -min-ok 50 \
    -json > "$tmp/load.json" || {
    echo "rvd-smoke: live decode through the RealSE engine failed" >&2
    cat "$tmp/load.json" >&2
    exit 1
}
echo "rvd-smoke: serving wire-up ok (config advertises engine, live decodes pass)"

echo "rvd-smoke: OK"
