#!/usr/bin/env bash
# chaos-smoke: boot sdserver with fault injection wrapping every worker
# backend (-chaos), hammer it through the storm, and assert the
# self-healing contract end to end:
#
#   1. the process survives the storm (panics, stalls, garbage, glitches),
#   2. every request is answered or typed-rejected — sdload's
#      transport_errors (requests that never got an HTTP answer) stays 0,
#   3. the circuit breaker actually opened under the storm,
#   4. once the plan clears, health returns to ok,
#   5. SIGINT still drains gracefully.
#
# The plan is seeded, so the storm is the same faults every run. The
# restart budget is raised above the storm's panic count: quarantine (the
# give-up state) is unit-tested separately; this smoke certifies recovery.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
addr="127.0.0.1:${SDSERVER_PORT:-18103}"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/sdserver" ./cmd/sdserver
go build -o "$tmp/sdload" ./cmd/sdload

# Roughly one backend call in three faults until the plan has rolled 400
# calls, then it goes quiet. Tight breaker cooldowns so open→probe→reclose
# cycles fit a seconds-scale smoke.
"$tmp/sdserver" -addr "$addr" -max-batch 8 -max-wait 1ms -workers 2 \
    -policy shed-to-linear \
    -chaos "panic=0.02,stall=0.05,garbage=0.1,error=0.15,stall-for=2ms,clear-after=400" \
    -chaos-seed 7 \
    -breaker-threshold 3 -breaker-cooldown 5ms -breaker-cooldown-cap 25ms \
    -max-restarts 200 \
    2> "$tmp/server.log" &
pid=$!

# Wave 1: load through the storm. -min-ok proves liveness; the
# transport_errors check proves nothing was dropped on the floor.
"$tmp/sdload" -addr "http://$addr" -duration 2s -conc 8 -min-ok 1 \
    -patience 10s -seed 11 -json > "$tmp/storm.json"
grep -q '"transport_errors": 0' "$tmp/storm.json" || {
    echo "chaos-smoke: requests dropped without an HTTP answer during the storm" >&2
    cat "$tmp/storm.json" >&2
    exit 1
}

# Wave 2: clean traffic after the storm — half-open probes ride on these
# submits and reclose the breakers.
"$tmp/sdload" -addr "http://$addr" -duration 2s -conc 8 -min-ok 1 \
    -patience 10s -seed 13 -json > "$tmp/calm.json"
grep -q '"transport_errors": 0' "$tmp/calm.json" || {
    echo "chaos-smoke: requests dropped without an HTTP answer after the storm" >&2
    cat "$tmp/calm.json" >&2
    exit 1
}

# Health must have recovered: /healthz answers 200 with status ok.
up=""
for _ in $(seq 1 50); do
    if curl -fsS "http://$addr/healthz" 2>/dev/null | grep -q '"status":"ok"'; then
        up=1
        break
    fi
    sleep 0.1
done
[ "${up:-}" = 1 ] || {
    echo "chaos-smoke: health never returned to ok after the storm" >&2
    curl -sS "http://$addr/healthz" >&2 || true
    exit 1
}

# The storm must actually have exercised the breaker and the supervisor.
curl -fsS "http://$addr/metrics?format=prometheus" > "$tmp/metrics.prom"
opened=$(awk '$1 == "mimosd_breaker_opened_total" {print int($2)}' "$tmp/metrics.prom")
[ "${opened:-0}" -gt 0 ] || {
    echo "chaos-smoke: breaker never opened under the storm (opened=${opened:-?})" >&2
    exit 1
}
panics=$(awk '$1 == "mimosd_worker_panics_total" {print int($2)}' "$tmp/metrics.prom")
[ "${panics:-0}" -gt 0 ] || {
    echo "chaos-smoke: no worker panic was injected/recovered (panics=${panics:-?})" >&2
    exit 1
}

# Graceful drain: SIGINT stops the server cleanly and it logs final stats.
kill -INT "$pid"
wait "$pid"
pid=""
grep -q 'final stats' "$tmp/server.log" || {
    echo "chaos-smoke: server did not log final stats on drain" >&2
    cat "$tmp/server.log" >&2
    exit 1
}
echo "chaos-smoke: OK"
