#!/usr/bin/env bash
# ofdm-smoke: boot a real sdserver and certify the wideband OFDM workload
# tier end to end:
#
#   1. the static-dense scenario (coherent resource grid) passes its SLO
#      gates — exact-fraction floor, BER ceiling, BER no worse than the ZF
#      floor, p99 bound, zero transport errors — deterministically from its
#      seed, and drives the server's QR preprocess cache to a hit rate of
#      at least OFDM_MIN_COHERENT_RATE (default 0.80),
#   2. the incoherent-control scenario (independent channel per frame, same
#      grid geometry) passes its SLOs against a fresh server but leaves the
#      cache hit rate below OFDM_MAX_INCOHERENT_RATE (default 0.30) — the
#      measured delta is the tentpole's whole point,
#   3. the mobility-aging scenario (Doppler drift + CSI noise) passes its
#      SLOs: the serving stack honours the degradation contract even when
#      the detector's channel estimate is stale.
#
# Each scenario gets a freshly booted server (-workers 1 so the per-server
# QR cache is a single 64-entry LRU) so cache measurements don't bleed
# between runs. sdload's exit status enforces the SLO gates; this script
# adds the cache-rate assertions on top.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
port=${SDOFDM_PORT:-18220}
addr="127.0.0.1:$port"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    [ -n "$server_pid" ] && wait "$server_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/sdserver" ./cmd/sdserver
go build -o "$tmp/sdload" ./cmd/sdload

start_server() { # start_server <logname>
    "$tmp/sdserver" -addr "$addr" -workers 1 -max-batch 16 -max-wait 1ms \
        2> "$tmp/$1.log" &
    server_pid=$!
    local up=""
    for _ in $(seq 1 100); do
        if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then up=1; break; fi
        sleep 0.1
    done
    [ "${up:-}" = 1 ] || {
        echo "ofdm-smoke: sdserver never came up" >&2
        cat "$tmp/$1.log" >&2
        exit 1
    }
}
stop_server() {
    kill "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
    server_pid=""
}

hit_rate() { # hit_rate <sdload-json> -> per-scenario qr_cache_hit_rate
    grep -o '"qr_cache_hit_rate": *[0-9.e-]*' "$1" | head -1 | sed 's/.*: *//'
}

run_scenario() { # run_scenario <name> <outfile>
    "$tmp/sdload" -addr "http://$addr" -scenario "$1" -seed 1 -conc 8 \
        -min-ok 1 -patience 10s -json > "$2" || {
        echo "ofdm-smoke: scenario $1 failed its gates" >&2
        cat "$2" >&2
        exit 1
    }
    grep -q '"slo_violations": \[\]' "$2" || {
        echo "ofdm-smoke: scenario $1 reported SLO violations" >&2
        cat "$2" >&2
        exit 1
    }
}

min_coherent=${OFDM_MIN_COHERENT_RATE:-0.80}
max_incoherent=${OFDM_MAX_INCOHERENT_RATE:-0.30}

# ---- 1. coherent grid: SLOs pass, cache runs hot ------------------------
start_server static
run_scenario static-dense "$tmp/static.json"
coherent_rate=$(hit_rate "$tmp/static.json")
stop_server
echo "ofdm-smoke: static-dense SLO ok, QR-cache hit rate $coherent_rate (gate >= $min_coherent)"
awk -v r="$coherent_rate" -v g="$min_coherent" 'BEGIN { exit !(r >= g) }' || {
    echo "ofdm-smoke: coherent grid hit rate $coherent_rate below $min_coherent" >&2
    exit 1
}

# ---- 2. incoherent control: SLOs pass, cache stays cold -----------------
start_server incoherent
run_scenario incoherent-control "$tmp/incoherent.json"
incoherent_rate=$(hit_rate "$tmp/incoherent.json")
stop_server
echo "ofdm-smoke: incoherent-control SLO ok, QR-cache hit rate $incoherent_rate (gate < $max_incoherent)"
awk -v r="$incoherent_rate" -v g="$max_incoherent" 'BEGIN { exit !(r < g) }' || {
    echo "ofdm-smoke: incoherent control hit rate $incoherent_rate not below $max_incoherent" >&2
    exit 1
}

# ---- 3. mobility: CSI aging stays inside the degradation contract -------
start_server mobility
run_scenario mobility-aging "$tmp/mobility.json"
stop_server
echo "ofdm-smoke: mobility-aging SLO ok"

echo "ofdm-smoke: OK"
