#!/usr/bin/env bash
# adapt-smoke: A/B-certify the adaptive complexity controller end to end.
#
#   A. Baseline arm: sdserver with a fixed per-batch -node-budget sized so
#      the mobility-aging workload exhausts the pool — a static operating
#      point that sheds accuracy it didn't need to shed.
#   B. Adaptive arm: the same server with -adaptive — the controller picks
#      the cheapest ladder rung the observed SNR / node-cost / queue
#      pressure permits, per request class.
#
# Same scenario, same seed, same concurrency on both arms. Gates:
#
#   1. exact-decode fraction: adaptive strictly higher than fixed
#      (worst adaptive round vs best fixed round),
#   2. p99 latency parity: adaptive within ADAPT_P99_FACTOR (default 1.10)
#      of fixed, or within ADAPT_P99_SLACK_NS (default 1.5ms) absolute —
#      whichever is looser. Both arms sit ~500x under the scenario's 2s
#      p99 SLO, so at the ~4ms scale a relative gate alone measures
#      scheduler noise, not policy cost: the absolute slack is the
#      noise floor of a shared CI box. Every freshly booted server is
#      warmed with one discarded run (the first batches pay decoder-cache
#      construction, which lands squarely in a 768-sample p99), each arm
#      then runs ADAPT_ROUNDS (default 3) measured rounds, and the arms
#      compare min-p99 — the stable lower envelope of the distribution.
#   3. runtime reconfiguration: PUT /v1/policy pins "linear" on the live
#      adaptive server and the very next run serves zero exact frames;
#      PUT "adaptive" restores the controller and exact decodes return.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
port=${SDADAPT_PORT:-18240}
addr="127.0.0.1:$port"
rounds=${ADAPT_ROUNDS:-3}
p99_factor=${ADAPT_P99_FACTOR:-1.10}
p99_slack=${ADAPT_P99_SLACK_NS:-1500000}
node_budget=${ADAPT_FIXED_BUDGET:-40}
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    [ -n "$server_pid" ] && wait "$server_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/sdserver" ./cmd/sdserver
go build -o "$tmp/sdload" ./cmd/sdload

start_server() { # start_server <logname> [extra flags...]
    local log="$1"; shift
    "$tmp/sdserver" -addr "$addr" -workers 1 -max-batch 16 -max-wait 1ms "$@" \
        2> "$tmp/$log.log" &
    server_pid=$!
    local up=""
    for _ in $(seq 1 100); do
        if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then up=1; break; fi
        sleep 0.1
    done
    [ "${up:-}" = 1 ] || {
        echo "adapt-smoke: sdserver never came up" >&2
        cat "$tmp/$log.log" >&2
        exit 1
    }
}
stop_server() {
    kill "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
    server_pid=""
}

run_load() { # run_load <outfile> -> mobility-aging through the live server
    "$tmp/sdload" -addr "http://$addr" -scenario mobility-aging -seed 1 \
        -conc 8 -min-ok 1 -patience 10s -no-slo -json > "$1" || {
        echo "adapt-smoke: sdload run failed" >&2
        cat "$1" >&2
        exit 1
    }
}

field() { # field <json> <key> -> first numeric value of "key"
    grep -o "\"$2\": *[0-9.e+-]*" "$1" | head -1 | sed 's/.*: *//'
}

# ---- A. fixed baseline: static node budget, N rounds --------------------
fixed_exact="" fixed_p99=""
for i in $(seq 1 "$rounds"); do
    start_server "fixed$i" -node-budget "$node_budget"
    run_load "$tmp/warmup.json" # discarded: absorb cold-start costs
    run_load "$tmp/fixed$i.json"
    stop_server
    e=$(field "$tmp/fixed$i.json" exact_fraction)
    p=$(field "$tmp/fixed$i.json" p99_ns)
    echo "adapt-smoke: fixed round $i: exact $e, p99 ${p}ns"
    # best fixed round: highest exact fraction, lowest p99
    fixed_exact=$(awk -v a="${fixed_exact:-0}" -v b="$e" 'BEGIN { print (b > a) ? b : a }')
    fixed_p99=$(awk -v a="${fixed_p99:-1e18}" -v b="$p" 'BEGIN { print (b < a) ? b : a }')
done

# The baseline must actually be starved — otherwise the A/B says nothing.
awk -v e="$fixed_exact" 'BEGIN { exit !(e < 0.95) }' || {
    echo "adapt-smoke: fixed baseline not starved (exact $fixed_exact); raise traffic or lower ADAPT_FIXED_BUDGET" >&2
    exit 1
}

# ---- B. adaptive arm: same traffic, controller decides ------------------
adapt_exact="" adapt_p99=""
for i in $(seq 1 "$rounds"); do
    start_server "adapt$i" -adaptive
    run_load "$tmp/warmup.json" # discarded: absorb cold-start costs
    run_load "$tmp/adapt$i.json"
    [ "$i" -lt "$rounds" ] && stop_server
    e=$(field "$tmp/adapt$i.json" exact_fraction)
    p=$(field "$tmp/adapt$i.json" p99_ns)
    echo "adapt-smoke: adaptive round $i: exact $e, p99 ${p}ns"
    # worst adaptive round: lowest exact fraction; min p99 for the envelope
    adapt_exact=$(awk -v a="${adapt_exact:-1e18}" -v b="$e" 'BEGIN { print (b < a) ? b : a }')
    adapt_p99=$(awk -v a="${adapt_p99:-1e18}" -v b="$p" 'BEGIN { print (b < a) ? b : a }')
done
# the last adaptive server stays up for the live-reconfiguration check

# ---- gate 1: adaptive serves strictly more exact decodes ----------------
awk -v a="$adapt_exact" -v f="$fixed_exact" 'BEGIN { exit !(a > f) }' || {
    echo "adapt-smoke: FAIL: adaptive exact $adapt_exact not above fixed $fixed_exact" >&2
    exit 1
}
echo "adapt-smoke: exact fraction $adapt_exact (adaptive) > $fixed_exact (fixed)"

# ---- gate 2: p99 parity -------------------------------------------------
awk -v a="$adapt_p99" -v f="$fixed_p99" -v k="$p99_factor" -v s="$p99_slack" \
    'BEGIN { exit !(a <= k * f || a <= f + s) }' || {
    echo "adapt-smoke: FAIL: adaptive p99 ${adapt_p99}ns exceeds ${p99_factor}x fixed ${fixed_p99}ns (+${p99_slack}ns slack)" >&2
    exit 1
}
echo "adapt-smoke: p99 parity ${adapt_p99}ns (adaptive) vs ${fixed_p99}ns (fixed), gate ${p99_factor}x or +${p99_slack}ns"

# ---- gate 3: PUT /v1/policy reconfigures the live server ----------------
curl -fsS -X PUT -H 'Content-Type: application/json' \
    -d '{"policy":"linear"}' "http://$addr/v1/policy" > "$tmp/pin.json" || {
    echo "adapt-smoke: PUT /v1/policy (pin) failed" >&2
    exit 1
}
grep -q '"mode":"override"' "$tmp/pin.json" || {
    echo "adapt-smoke: pin not echoed as override:" >&2
    cat "$tmp/pin.json" >&2
    exit 1
}
curl -fsS "http://$addr/v1/config" | grep -q '"decode_policy":"linear"' || {
    echo "adapt-smoke: /v1/config does not echo the pinned policy" >&2
    exit 1
}
run_load "$tmp/pinned.json"
pinned_exact=$(field "$tmp/pinned.json" exact_fraction)
awk -v e="$pinned_exact" 'BEGIN { exit !(e == 0) }' || {
    echo "adapt-smoke: pinned-linear server still served exact decodes ($pinned_exact)" >&2
    exit 1
}
curl -fsS -X PUT -H 'Content-Type: application/json' \
    -d '{"policy":"adaptive"}' "http://$addr/v1/policy" > "$tmp/resume.json"
grep -q '"mode":"adaptive"' "$tmp/resume.json" || {
    echo "adapt-smoke: resume not echoed as adaptive:" >&2
    cat "$tmp/resume.json" >&2
    exit 1
}
run_load "$tmp/resumed.json"
resumed_exact=$(field "$tmp/resumed.json" exact_fraction)
awk -v e="$resumed_exact" -v f="$fixed_exact" 'BEGIN { exit !(e > f) }' || {
    echo "adapt-smoke: resumed controller exact $resumed_exact not above fixed $fixed_exact" >&2
    exit 1
}
stop_server
echo "adapt-smoke: live PUT /v1/policy pin (exact 0 under linear) and resume (exact $resumed_exact) verified"

echo "adapt-smoke: OK"
