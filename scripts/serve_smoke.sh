#!/usr/bin/env bash
# serve-smoke: boot sdserver, fire sdload at it for 2 s, and assert a
# non-zero decoded count (sdload exits 1 below -min-ok). No curl needed:
# sdload itself waits for the server to come up (-patience).
set -euo pipefail

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
addr="127.0.0.1:${SDSERVER_PORT:-18099}"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/sdserver" ./cmd/sdserver
go build -o "$tmp/sdload" ./cmd/sdload

"$tmp/sdserver" -addr "$addr" -max-batch 16 -max-wait 1ms -workers 2 &
pid=$!

"$tmp/sdload" -addr "http://$addr" -duration 2s -conc 8 -min-ok 1 -patience 10s \
    | tee "$tmp/sdload.out"

# The runtime-health line (GC pause + allocs/frame from /metrics) must be
# present — it is the live regression signal for the zero-alloc hot path.
grep -q 'server .*gc pause' "$tmp/sdload.out" || {
    echo "serve-smoke: sdload output missing server runtime metrics" >&2
    exit 1
}

# Graceful drain: SIGINT must stop the server cleanly.
kill -INT "$pid"
wait "$pid"
pid=""
echo "serve-smoke: OK"
