#!/usr/bin/env bash
# trace-smoke: boot sdserver, capture a short self-stimulated trace with
# sdtrace, and assert the stream is schema-valid end to end. sdtrace itself
# re-validates every line (counter-consistency included) and exits 1 on any
# violation, so a zero exit here certifies the whole observability path:
# recorder → hub → /v1/trace → capture → summary.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
addr="127.0.0.1:${SDSERVER_PORT:-18101}"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/sdserver" ./cmd/sdserver
go build -o "$tmp/sdtrace" ./cmd/sdtrace

"$tmp/sdserver" -addr "$addr" -max-batch 8 -max-wait 1ms -workers 2 &
pid=$!

# Wait for the server to accept config requests.
for _ in $(seq 1 100); do
    if "$tmp/sdtrace" capture -url "http://$addr" -frames 1 -stim -timeout 5s \
        -jsonl > /dev/null 2>&1; then
        up=1
        break
    fi
    sleep 0.1
done
[ "${up:-}" = 1 ] || { echo "trace-smoke: server never came up" >&2; exit 1; }

# Capture a real trace: raw lines for the schema check, then the summary
# renderer over the same lines.
"$tmp/sdtrace" capture -url "http://$addr" -frames 6 -stim -timeout 20s \
    -jsonl > "$tmp/trace.jsonl"

lines=$(wc -l < "$tmp/trace.jsonl")
[ "$lines" -eq 6 ] || {
    echo "trace-smoke: captured $lines lines, want 6" >&2
    exit 1
}
grep -q '"schema":"mimosd.trace.v1"' "$tmp/trace.jsonl" || {
    echo "trace-smoke: lines missing schema tag" >&2
    exit 1
}
grep -q '"source":"serve"' "$tmp/trace.jsonl" || {
    echo "trace-smoke: lines not tagged as serve traces" >&2
    exit 1
}

"$tmp/sdtrace" summary -in "$tmp/trace.jsonl" | tee "$tmp/summary.out"
grep -q 'counter self-check OK' "$tmp/summary.out" || {
    echo "trace-smoke: summary missing counter self-check" >&2
    exit 1
}

# Graceful drain.
kill -INT "$pid"
wait "$pid"
pid=""
echo "trace-smoke: OK"
