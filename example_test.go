package mimosd_test

import (
	"fmt"

	mimosd "repro"
)

// ExampleDetect decodes one 4×4 4-QAM transmission with the paper's sphere
// decoder and verifies it recovered the transmitted symbols.
func ExampleDetect() {
	cfg := mimosd.Config{TxAntennas: 4, RxAntennas: 4, Modulation: "4-QAM"}
	link, err := mimosd.RandomLink(cfg, 20, 7) // 20 dB: easy decode
	if err != nil {
		panic(err)
	}
	det, err := mimosd.Detect(cfg, mimosd.AlgSphereDecoder, link.H, link.Y, link.NoiseVar)
	if err != nil {
		panic(err)
	}
	match := true
	for i := range link.SentSymbols {
		if det.SymbolIndices[i] != link.SentSymbols[i] {
			match = false
		}
	}
	fmt.Println("recovered:", match)
	// Output: recovered: true
}

// ExampleSimulateBER measures the exact sphere decoder's bit error rate on a
// small Monte-Carlo batch.
func ExampleSimulateBER() {
	cfg := mimosd.Config{TxAntennas: 4, RxAntennas: 4, Modulation: "4-QAM"}
	rep, err := mimosd.SimulateBER(cfg, mimosd.AlgSphereDecoder, 25, 100, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("frames=%d bits=%d BER=%g\n", rep.Frames, rep.Bits, rep.BER)
	// Output: frames=100 bits=800 BER=0
}

// ExampleNewAccelerator builds the simulated FPGA accelerator and reads its
// hardware profile (the paper's Table I/II quantities).
func ExampleNewAccelerator() {
	cfg := mimosd.Config{TxAntennas: 10, RxAntennas: 10, Modulation: "4-QAM"}
	acc, err := mimosd.NewAccelerator(cfg, mimosd.VariantOptimized)
	if err != nil {
		panic(err)
	}
	hw := acc.Hardware()
	fmt.Printf("%.0f MHz, fits=%v, %.1f W\n", hw.FreqMHz, hw.Fits, hw.PowerW)
	// Output: 300 MHz, fits=true, 8.0 W
}
