GO ?= go

.PHONY: check vet build test race race-serve race-cluster serve-smoke trace-smoke chaos-smoke cluster-smoke ofdm-smoke rvd-smoke adapt-smoke sdc-smoke fuzz bench bench-check

# check is the gate: static analysis, build, a single-iteration pass over
# every benchmark (so the bench harness itself cannot rot), the serving
# scheduler under the race detector (its tests are the most
# concurrency-sensitive, so they run first and fail fast), the cluster
# proxy and breaker under the race detector, the full suite under the race
# detector, then the observability path, the single-node self-healing
# contract, the cluster failover contract, the OFDM workload tier's
# SLO and cache-delta gates, the real-valued SE hot-path gate
# (speedup, comparator-free, zero-alloc, servable), the adaptive
# complexity controller's A/B gate end to end, and the silent-data-
# corruption defense under seeded fault injection.
check: vet build bench-check race-serve race-cluster race trace-smoke chaos-smoke cluster-smoke ofdm-smoke rvd-smoke adapt-smoke sdc-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

race-serve:
	$(GO) vet ./...
	$(GO) test -race ./internal/serve/...

# race-cluster runs the sharding/failover/hedging layer and the circuit
# breaker (whose half-open exclusivity the proxy leans on) under the race
# detector — the cluster race loop is the most contended code in the repo.
race-cluster:
	$(GO) vet ./internal/cluster/... ./internal/resilience/...
	$(GO) test -race ./internal/cluster/... ./internal/resilience/...

# serve-smoke boots sdserver, fires sdload at it for 2 s, and asserts a
# non-zero decoded count (end-to-end liveness of the serving stack).
serve-smoke:
	bash scripts/serve_smoke.sh

# trace-smoke boots sdserver, captures a self-stimulated trace via sdtrace,
# and asserts every streamed line passes schema validation (recorder → hub →
# /v1/trace → capture, end to end).
trace-smoke:
	bash scripts/trace_smoke.sh

# chaos-smoke boots sdserver with fault injection on every worker backend,
# drives load through the storm, and asserts the self-healing contract:
# no crash, no dropped requests, breaker opens, health returns to ok.
chaos-smoke:
	bash scripts/chaos_smoke.sh

# cluster-smoke boots a ring of sdserver shards behind sdproxy and asserts
# the cluster contract: throughput scales with shard count, affinity
# routing beats scatter on QR-cache locality, a seeded kill/partition/
# stall storm drops nothing and health recovers, and join/leave work live.
cluster-smoke:
	bash scripts/cluster_smoke.sh

# ofdm-smoke boots sdserver and runs the wideband scenario suite against
# it: static-dense must pass its SLOs and drive the QR cache >= 80% hits,
# incoherent-control must pass while staying < 30%, and mobility-aging
# must hold the degradation contract under CSI aging.
ofdm-smoke:
	bash scripts/ofdm_smoke.sh

# rvd-smoke gates the real-valued Schnorr–Euchner engine: >= 1.3x over the
# complex SortedDFS+GEMM hot path measured side-by-side, zero comparator
# work, zero allocs/op, and an sdserver booted with -strategy rvd-se
# -norm linf advertising the engine and decoding live traffic.
rvd-smoke:
	bash scripts/rvd_smoke.sh

# adapt-smoke A/B-certifies the adaptive complexity controller: under the
# same mobility-aging traffic and seed, -adaptive must serve a strictly
# higher exact-decode fraction than a starved fixed -node-budget baseline
# at p99 latency parity, and PUT /v1/policy must reconfigure the live
# server (pin to linear, resume to adaptive) observably.
adapt-smoke:
	bash scripts/adapt_smoke.sh

# sdc-smoke boots sdserver with the integrity stack armed (-verify-gemm,
# verify-on-hit QR cache, re-encode audit) plus a seeded bit-flip plan
# (-sdc-chaos) and asserts the SDC defense contract: every landed GEMM
# and metric corruption detected, corrupted cache entries evicted, zero
# corrupted frames served as exact (static-dense SLOs hold through the
# storm), and health recovering once the plan clears.
sdc-smoke:
	bash scripts/sdc_smoke.sh

# bench regenerates BENCH_decode.json: the software hot-path figures
# (ns/decode, allocs/op, nodes/s, the QR-reuse batch speedup, and the
# integrity-stack overheads, with the ABFT GEMM-verify overhead on the
# single-frame hot path gated at 15%).
bench:
	$(GO) run ./cmd/sdbench -out BENCH_decode.json -gate-sdc-overhead 0.15

# bench-check smoke-runs every benchmark for one iteration — a compile-and-
# liveness gate for the bench harness, cheap enough to sit inside check.
bench-check:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# fuzz runs the native fuzzers for a short budget each (they also run as
# plain regression tests under `make test` via their seed corpora).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzQR -fuzztime=30s ./internal/cmatrix/
	$(GO) test -run='^$$' -fuzz=FuzzSlice -fuzztime=30s ./internal/constellation/
