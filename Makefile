GO ?= go

.PHONY: check vet build test race fuzz

# check is the gate: static analysis, build, and the full test suite under
# the race detector.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fuzz runs the native fuzzers for a short budget each (they also run as
# plain regression tests under `make test` via their seed corpora).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzQR -fuzztime=30s ./internal/cmatrix/
	$(GO) test -run='^$$' -fuzz=FuzzSlice -fuzztime=30s ./internal/constellation/
