package mimosd

import (
	"errors"
	"math"
	"testing"
)

// TestValidateInputConsistency: Detect and DetectSoft must reject a bad
// input with exactly the error ValidateInput predicts — one validation path,
// one message, ErrInvalidInput wrapping everywhere.
func TestValidateInputConsistency(t *testing.T) {
	cfg := Config{TxAntennas: 2, RxAntennas: 2, Modulation: "4-QAM"}
	good, err := RandomLink(cfg, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	bads := []struct {
		name string
		cfg  Config
		h    [][]complex128
		y    []complex128
		nv   float64
	}{
		{"bad modulation", Config{TxAntennas: 2, RxAntennas: 2, Modulation: "nope"}, good.H, good.Y, good.NoiseVar},
		{"bad shape", Config{TxAntennas: 0, RxAntennas: 2, Modulation: "4-QAM"}, good.H, good.Y, good.NoiseVar},
		{"row count", cfg, good.H[:1], good.Y, good.NoiseVar},
		{"y length", cfg, good.H, good.Y[:1], good.NoiseVar},
		{"nan channel", cfg, [][]complex128{{complex(math.NaN(), 0), 1}, {1, 1}}, good.Y, good.NoiseVar},
		{"zero noise", cfg, good.H, good.Y, 0},
	}
	for _, tc := range bads {
		vErr := ValidateInput(tc.cfg, tc.h, tc.y, tc.nv)
		if vErr == nil {
			t.Errorf("%s: ValidateInput accepted it", tc.name)
			continue
		}
		if !errors.Is(vErr, ErrInvalidInput) {
			t.Errorf("%s: ValidateInput error does not wrap ErrInvalidInput: %v", tc.name, vErr)
		}
		if _, dErr := Detect(tc.cfg, AlgSphereDecoder, tc.h, tc.y, tc.nv); dErr == nil || dErr.Error() != vErr.Error() {
			t.Errorf("%s: Detect error %q, ValidateInput predicts %q", tc.name, dErr, vErr)
		}
		if _, sErr := DetectSoft(tc.cfg, tc.h, tc.y, tc.nv, 4); sErr == nil || sErr.Error() != vErr.Error() {
			t.Errorf("%s: DetectSoft error %q, ValidateInput predicts %q", tc.name, sErr, vErr)
		}
	}
	if err := ValidateInput(cfg, good.H, good.Y, good.NoiseVar); err != nil {
		t.Fatalf("ValidateInput rejected a decodable link: %v", err)
	}
	if _, err := Detect(cfg, AlgSphereDecoder, good.H, good.Y, good.NoiseVar); err != nil {
		t.Fatalf("Detect rejected a validated link: %v", err)
	}
}

// TestDecodeBatchOptions: the variadic batch surface and its deprecated
// wrappers must agree.
func TestDecodeBatchOptions(t *testing.T) {
	cfg := Config{TxAntennas: 4, RxAntennas: 4, Modulation: "4-QAM"}
	acc, err := NewAccelerator(cfg, VariantOptimized)
	if err != nil {
		t.Fatal(err)
	}
	links := make([]*Link, 4)
	for i := range links {
		l, err := RandomLink(cfg, 10, uint64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		links[i] = l
	}
	plain, err := acc.DecodeBatch(links)
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := acc.DecodeBatchBudget(links, BatchBudget{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.NodesExplored != budgeted.NodesExplored {
		t.Fatal("deprecated DecodeBatchBudget wrapper diverged")
	}
	fb, err := acc.DecodeBatch(links, WithFallback())
	if err != nil {
		t.Fatal(err)
	}
	for i, det := range fb.Detections {
		if det.Quality != "fallback" {
			t.Fatalf("link %d: fallback batch produced quality %q", i, det.Quality)
		}
	}
	fbOld, err := acc.DecodeBatchFallback(links)
	if err != nil {
		t.Fatal(err)
	}
	if fb.Detections[0].Algorithm != fbOld.Detections[0].Algorithm {
		t.Fatal("fallback naming diverged between surfaces")
	}
	tight, err := acc.DecodeBatch(links, WithBudget(BatchBudget{NodeBudget: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if !tight.Degraded {
		t.Fatal("1-node batch budget did not degrade")
	}
}
