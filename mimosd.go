// Package mimosd is the public API of this repository: a Go reproduction of
// "Signal Detection for Large MIMO Systems Using Sphere Decoding on FPGAs"
// (Hassan, Dabah, Ltaief, Fahmy — IPPS 2023).
//
// The package exposes the paper's system end to end:
//
//   - Detect runs a single MIMO detection with any of the implemented
//     algorithms (the paper's GEMM/sorted-DFS sphere decoder, the exact ML
//     reference, the GPU-style BFS variant, fixed-complexity FSD, and the
//     linear ZF/MMSE/MRC decoders).
//   - RandomLink draws a Rayleigh/AWGN Monte-Carlo transmission to feed it.
//   - SimulateBER measures bit error rates over Monte-Carlo batches.
//   - SimulateTiming converts real search traces into modeled decode times
//     on the paper's platforms (CPU, FPGA baseline, FPGA optimized).
//   - Accelerator wraps the integrated FPGA product: decode batches and
//     read simulated hardware time, cycle breakdown, resources, power.
//
// Hardware note: no Alveo U280 is attached — FPGA/CPU/GPU times come from
// calibrated execution models driven by exact operation traces. DESIGN.md
// documents every substitution; EXPERIMENTS.md records paper-vs-measured
// values for every table and figure.
package mimosd

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/channel"
	"repro/internal/cmatrix"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/decoder"
	"repro/internal/fpga"
	"repro/internal/lattice"
	"repro/internal/mimo"
	"repro/internal/order"
	"repro/internal/platform"
	"repro/internal/quantize"
	"repro/internal/rng"
	"repro/internal/sphere"
)

// ErrInvalidInput flags malformed caller input: NaN/Inf entries in the
// channel or observation, a non-positive noise variance, or a dimension
// mismatch against the configuration. Test with errors.Is.
var ErrInvalidInput = errors.New("mimosd: invalid input")

// Algorithm selects a detector.
type Algorithm string

// Implemented detection algorithms.
const (
	// AlgSphereDecoder is the paper's detector: sorted depth-first sphere
	// decoding with GEMM-batched child evaluation. Exact (ML-equal).
	AlgSphereDecoder Algorithm = "sd"
	// AlgSphereBFS is the level-synchronous GEMM-BFS variant of [1] (the
	// GPU baseline).
	AlgSphereBFS Algorithm = "sd-bfs"
	// AlgSphereBestFS is a true priority-queue best-first sphere decoder.
	AlgSphereBestFS Algorithm = "sd-bestfs"
	// AlgFSD is the fixed-complexity sphere decoder (suboptimal, constant
	// work).
	AlgFSD Algorithm = "fsd"
	// AlgSphereSQRD is the paper's detector preceded by sorted-QR detection
	// ordering (fewer expansions, identical results).
	AlgSphereSQRD Algorithm = "sd-sqrd"
	// AlgSphereFP16 is the paper's detector behind a half-precision data
	// path (the future-work precision study).
	AlgSphereFP16 Algorithm = "sd-fp16"
	// AlgML is the exhaustive maximum-likelihood reference.
	AlgML Algorithm = "ml"
	// AlgZF, AlgMMSE, AlgMRC are the linear decoders.
	AlgZF   Algorithm = "zf"
	AlgMMSE Algorithm = "mmse"
	AlgMRC  Algorithm = "mrc"
	// AlgLLLZF is lattice-reduction-aided linear detection: LLL-reduce the
	// channel basis, equalize, round in the reduced domain. Near-ML BER at
	// linear-decoder cost.
	AlgLLLZF Algorithm = "lll-zf"
	// AlgSIC is V-BLAST ordered successive interference cancellation:
	// polynomial complexity, BER between MMSE and ML.
	AlgSIC Algorithm = "sic"
	// AlgSphereRVD is the real-valued-decomposition sphere decoder: the
	// 2M-level PAM-tree formulation. Exact, like the complex search.
	AlgSphereRVD Algorithm = "sd-rvd"
	// AlgSphereRVDSE is the real-valued hot-path engine: RVD tree with
	// Schnorr–Euchner analytic child ordering (no per-node sort). Exact.
	AlgSphereRVDSE Algorithm = "sd-rvd-se"
	// AlgSphereLInf is the RVD/SE engine under the ℓ∞ partial-distance
	// metric (max residual instead of sum) — the max-comparator datapath
	// study. Slightly suboptimal BER, exact for its own criterion.
	AlgSphereLInf Algorithm = "sd-linf"
)

// Config describes a MIMO system.
type Config struct {
	// TxAntennas (M) and RxAntennas (N >= M).
	TxAntennas, RxAntennas int
	// Modulation is one of "BPSK", "4-QAM"/"QPSK", "16-QAM", "64-QAM"
	// (case and punctuation insensitive).
	Modulation string
}

// parse converts the public config into internal form.
func (c Config) parse() (mimo.Config, *constellation.Constellation, error) {
	mod, err := constellation.ParseModulation(c.Modulation)
	if err != nil {
		return mimo.Config{}, nil, err
	}
	mc := mimo.Config{Tx: c.TxAntennas, Rx: c.RxAntennas, Mod: mod, Convention: channel.PerTransmitSymbol}
	if err := mc.Validate(); err != nil {
		return mimo.Config{}, nil, err
	}
	return mc, constellation.New(mod), nil
}

// newDecoder builds the detector for an algorithm.
func newDecoder(alg Algorithm, cons *constellation.Constellation) (decoder.Decoder, error) {
	switch alg {
	case AlgSphereDecoder:
		return sphere.New(sphere.Config{Const: cons, Strategy: sphere.SortedDFS, UseGEMM: true})
	case AlgSphereBFS:
		return sphere.New(sphere.Config{Const: cons, Strategy: sphere.BFS})
	case AlgSphereBestFS:
		return sphere.New(sphere.Config{Const: cons, Strategy: sphere.BestFS})
	case AlgFSD:
		return sphere.New(sphere.Config{Const: cons, Strategy: sphere.FSD})
	case AlgSphereSQRD:
		inner, err := sphere.New(sphere.Config{Const: cons, Strategy: sphere.SortedDFS, UseGEMM: true})
		if err != nil {
			return nil, err
		}
		return order.NewDecoder(inner, order.SQRD), nil
	case AlgSphereFP16:
		inner, err := sphere.New(sphere.Config{Const: cons, Strategy: sphere.SortedDFS, UseGEMM: true})
		if err != nil {
			return nil, err
		}
		return quantize.NewDecoder(inner), nil
	case AlgML:
		return decoder.NewML(cons), nil
	case AlgZF:
		return decoder.NewZF(cons), nil
	case AlgMMSE:
		return decoder.NewMMSE(cons), nil
	case AlgMRC:
		return decoder.NewMRC(cons), nil
	case AlgLLLZF:
		return lattice.NewDecoder(cons), nil
	case AlgSIC:
		return decoder.NewSIC(cons), nil
	case AlgSphereRVD:
		return sphere.NewRVD(cons)
	case AlgSphereRVDSE:
		return sphere.New(sphere.Config{Const: cons, Strategy: sphere.RealSE})
	case AlgSphereLInf:
		return sphere.New(sphere.Config{Const: cons, Strategy: sphere.RealSE, Norm: sphere.NormLInf})
	default:
		return nil, fmt.Errorf("mimosd: unknown algorithm %q", alg)
	}
}

// errDecoder is a decoder stub whose Decode always fails with a fixed
// construction error. Parallel simulation factories return it instead of
// panicking when a decoder cannot be built, so the failure is accounted as
// decode failures instead of crossing the API boundary as a panic.
type errDecoder struct{ err error }

func (d errDecoder) Name() string { return "invalid" }

func (d errDecoder) Decode(*cmatrix.Matrix, cmatrix.Vector, float64) (*decoder.Result, error) {
	return nil, d.err
}

// Link is one Monte-Carlo transmission: the channel state the receiver
// knows, the observation, and (for scoring) what was sent.
type Link struct {
	// H is the Rx×Tx channel matrix, row-major.
	H [][]complex128
	// Y is the received vector.
	Y []complex128
	// NoiseVar is the complex noise variance σ².
	NoiseVar float64
	// SentSymbols holds the transmitted constellation indices.
	SentSymbols []int
	// SentBits holds the transmitted bits (Gray-coded).
	SentBits []int
}

// RandomLink draws a transmission at the given SNR (dB, Es/N0 per transmit
// stream — the convention calibrated against the paper's Fig. 7).
func RandomLink(cfg Config, snrDB float64, seed uint64) (*Link, error) {
	mc, _, err := cfg.parse()
	if err != nil {
		return nil, err
	}
	f, err := mimo.GenerateFrame(rng.New(seed), mc, snrDB)
	if err != nil {
		return nil, err
	}
	h := make([][]complex128, f.H.Rows)
	for i := range h {
		h[i] = append([]complex128(nil), f.H.Row(i)...)
	}
	return &Link{
		H: h, Y: append([]complex128(nil), f.Y...),
		NoiseVar:    f.NoiseVar,
		SentSymbols: f.SymbolIdx,
		SentBits:    f.Bits,
	}, nil
}

// Detection is the outcome of one Detect call.
type Detection struct {
	// SymbolIndices holds the detected constellation index per transmit
	// antenna; Symbols the corresponding points; Bits the Gray-decoded
	// bits.
	SymbolIndices []int
	Symbols       []complex128
	Bits          []int
	// Metric is ‖y − H·ŝ‖².
	Metric float64
	// NodesExplored is the number of tree expansions (0 for linear
	// decoders).
	NodesExplored int64
	// Algorithm echoes the detector used.
	Algorithm string
	// Quality is "exact", "best-effort", or "fallback" — below exact, the
	// search was cut by a budget or deadline and the decision is the best
	// available, not the maximum-likelihood point. See DESIGN.md.
	Quality string
	// DegradedBy names what cut the search ("node-budget", "deadline",
	// "batch-deadline"); empty for exact detections.
	DegradedBy string
}

// checkLinkInput validates raw caller input against the configuration and
// packs the channel into matrix form. All failures wrap ErrInvalidInput.
func checkLinkInput(mc mimo.Config, h [][]complex128, y []complex128, noiseVar float64) (*cmatrix.Matrix, error) {
	if len(h) != mc.Rx {
		return nil, fmt.Errorf("%w: H has %d rows, config says %d", ErrInvalidInput, len(h), mc.Rx)
	}
	hm := cmatrix.NewMatrix(mc.Rx, mc.Tx)
	for i, row := range h {
		if len(row) != mc.Tx {
			return nil, fmt.Errorf("%w: H row %d has %d columns, config says %d", ErrInvalidInput, i, len(row), mc.Tx)
		}
		copy(hm.Row(i), row)
	}
	if !hm.IsFinite() {
		return nil, fmt.Errorf("%w: channel matrix has NaN/Inf entries", ErrInvalidInput)
	}
	if len(y) != mc.Rx {
		return nil, fmt.Errorf("%w: Y has %d entries, config says %d", ErrInvalidInput, len(y), mc.Rx)
	}
	if !cmatrix.Vector(y).IsFinite() {
		return nil, fmt.Errorf("%w: observation has NaN/Inf entries", ErrInvalidInput)
	}
	if noiseVar <= 0 || math.IsNaN(noiseVar) || math.IsInf(noiseVar, 0) {
		return nil, fmt.Errorf("%w: noise variance %v (want finite > 0)", ErrInvalidInput, noiseVar)
	}
	return hm, nil
}

// prepareInput is the single validation path of the public detectors: parse
// the configuration, check the raw input against it, and pack the channel
// into matrix form. Every failure — including a malformed Config — wraps
// ErrInvalidInput, so Detect, DetectSoft, and batch submission reject bad
// input identically.
func prepareInput(cfg Config, h [][]complex128, y []complex128, noiseVar float64) (mimo.Config, *constellation.Constellation, *cmatrix.Matrix, error) {
	mc, cons, err := cfg.parse()
	if err != nil {
		return mimo.Config{}, nil, nil, fmt.Errorf("%w: %v", ErrInvalidInput, err)
	}
	hm, err := checkLinkInput(mc, h, y, noiseVar)
	if err != nil {
		return mimo.Config{}, nil, nil, err
	}
	return mc, cons, hm, nil
}

// ValidateInput checks one detection input against cfg without decoding it:
// configuration validity, dimensions, finiteness, and the noise-variance
// contract. It is exactly the admission check Detect and DetectSoft perform;
// a nil return guarantees those calls will not reject the input. All
// failures wrap ErrInvalidInput.
func ValidateInput(cfg Config, h [][]complex128, y []complex128, noiseVar float64) error {
	_, _, _, err := prepareInput(cfg, h, y, noiseVar)
	return err
}

// detectionFrom converts an internal decode result to the public form.
func detectionFrom(res *decoder.Result, cons *constellation.Constellation, name string) *Detection {
	buf := make([]int, cons.BitsPerSymbol())
	bits := make([]int, 0, len(res.SymbolIdx)*cons.BitsPerSymbol())
	for _, idx := range res.SymbolIdx {
		bits = append(bits, cons.BitsOf(idx, buf)...)
	}
	return &Detection{
		SymbolIndices: res.SymbolIdx,
		Symbols:       append([]complex128(nil), res.Symbols...),
		Bits:          bits,
		Metric:        res.Metric,
		NodesExplored: res.Counters.NodesExpanded,
		Algorithm:     name,
		Quality:       res.Quality.String(),
		DegradedBy:    res.DegradedBy,
	}
}

// Detect runs one detection. Input validation is ValidateInput: a link that
// passes it is decodable.
func Detect(cfg Config, alg Algorithm, h [][]complex128, y []complex128, noiseVar float64) (*Detection, error) {
	_, cons, hm, err := prepareInput(cfg, h, y, noiseVar)
	if err != nil {
		return nil, err
	}
	d, err := newDecoder(alg, cons)
	if err != nil {
		return nil, err
	}
	res, err := d.Decode(hm, cmatrix.Vector(y), noiseVar)
	if err != nil {
		return nil, err
	}
	return detectionFrom(res, cons, d.Name()), nil
}

// SoftDetection is a Detection plus per-bit log-likelihood ratios.
type SoftDetection struct {
	Detection
	// LLR holds one value per transmitted bit (antenna-major, MSB first);
	// positive means bit 0 is more likely.
	LLR []float64
	// Candidates is the number of leaves that informed the LLRs.
	Candidates int
}

// DetectSoft runs list sphere decoding and returns the ML hard decision
// together with max-log LLRs over listSize retained candidates.
func DetectSoft(cfg Config, h [][]complex128, y []complex128, noiseVar float64, listSize int) (*SoftDetection, error) {
	_, cons, hm, err := prepareInput(cfg, h, y, noiseVar)
	if err != nil {
		return nil, err
	}
	sd, err := sphere.NewSoft(sphere.Config{Const: cons, Strategy: sphere.SortedDFS}, listSize)
	if err != nil {
		return nil, err
	}
	res, err := sd.DecodeSoft(hm, cmatrix.Vector(y), noiseVar)
	if err != nil {
		return nil, err
	}
	return &SoftDetection{
		Detection:  *detectionFrom(&res.Result, cons, sd.Name()),
		LLR:        res.LLR,
		Candidates: res.Candidates,
	}, nil
}

// BERReport summarizes a Monte-Carlo BER run.
type BERReport struct {
	Config    Config
	Algorithm string
	SNRdB     float64
	Frames    int
	Bits      int
	BitErrors int
	BER       float64
	// CILow/CIHigh is the Wilson 95% confidence interval on BER.
	CILow, CIHigh float64
	// NodesPerFrame is the mean tree expansions per decode.
	NodesPerFrame float64
}

// SimulateBER runs frames Monte-Carlo transmissions at snrDB through the
// chosen algorithm, in parallel, with a deterministic seed.
func SimulateBER(cfg Config, alg Algorithm, snrDB float64, frames int, seed uint64) (*BERReport, error) {
	mc, cons, err := cfg.parse()
	if err != nil {
		return nil, err
	}
	if _, err := newDecoder(alg, cons); err != nil {
		return nil, err
	}
	// The algorithm is validated above; if a per-worker rebuild still fails
	// (it should not), the worker decodes nothing and the failure surfaces
	// as DecodeFailures rather than a panic across the API boundary.
	factory := func() decoder.Decoder {
		d, err := newDecoder(alg, cons)
		if err != nil {
			return errDecoder{err: err}
		}
		return d
	}
	run, err := mimo.RunParallel(mc, snrDB, frames, 0, factory, seed)
	if err != nil {
		return nil, err
	}
	lo, hi := run.BERInterval()
	return &BERReport{
		Config: cfg, Algorithm: run.Decoder, SNRdB: snrDB,
		Frames: run.Frames, Bits: run.Bits, BitErrors: run.BitErrors,
		BER: run.BER(), CILow: lo, CIHigh: hi,
		NodesPerFrame: run.NodesPerFrame(),
	}, nil
}

// PlatformTiming is the modeled decode time of one platform for a batch.
type PlatformTiming struct {
	Platform string
	Time     time.Duration
	PowerW   float64
	EnergyJ  float64
	// ThroughputMbps is the detected payload rate the platform sustains on
	// this workload: batch bits / decode time — the "turning capacity into
	// throughput" framing of the Geosphere comparison.
	ThroughputMbps float64
}

// TimingReport holds per-platform modeled times for one SNR point.
type TimingReport struct {
	Config        Config
	SNRdB         float64
	Frames        int
	NodesPerFrame float64
	Platforms     []PlatformTiming
	// MeetsRealTime maps platform name to whether it met the paper's 10 ms
	// bound.
	MeetsRealTime map[string]bool
}

// SimulateTiming runs the sorted-DFS search over a frames-vector batch at
// snrDB and models decode time on the CPU, FPGA-baseline, and
// FPGA-optimized platforms.
func SimulateTiming(cfg Config, snrDB float64, frames int, seed uint64) (*TimingReport, error) {
	mc, cons, err := cfg.parse()
	if err != nil {
		return nil, err
	}
	factory := func() decoder.Decoder {
		d, err := sphere.New(sphere.Config{Const: cons, Strategy: sphere.SortedDFS})
		if err != nil {
			return errDecoder{err: err}
		}
		return d
	}
	run, err := mimo.RunParallel(mc, snrDB, frames, 0, factory, seed)
	if err != nil {
		return nil, err
	}
	w := decoder.Workload{M: mc.Tx, N: mc.Rx, P: cons.Size(), Frames: frames}

	rep := &TimingReport{
		Config: cfg, SNRdB: snrDB, Frames: frames,
		NodesPerFrame: run.NodesPerFrame(),
		MeetsRealTime: map[string]bool{},
	}
	batchBits := float64(frames * mc.Tx * cons.BitsPerSymbol())
	cpu := platform.NewCPU()
	cpuT, err := cpu.BatchTime(w, run.Counters)
	if err != nil {
		return nil, err
	}
	rep.Platforms = append(rep.Platforms, PlatformTiming{
		Platform: cpu.Name(), Time: cpuT,
		PowerW: cpu.Power(w), EnergyJ: cpu.Power(w) * cpuT.Seconds(),
		ThroughputMbps: batchBits / cpuT.Seconds() / 1e6,
	})
	for _, v := range []fpga.Variant{fpga.Baseline, fpga.Optimized} {
		design, err := fpga.NewDesign(v, mc.Mod, mc.Tx, mc.Rx)
		if err != nil {
			return nil, err
		}
		dur, _, err := design.BatchTime(w, run.Counters)
		if err != nil {
			return nil, err
		}
		rep.Platforms = append(rep.Platforms, PlatformTiming{
			Platform: "FPGA-" + v.String(), Time: dur,
			PowerW: design.Power(), EnergyJ: design.Energy(dur.Seconds()),
			ThroughputMbps: batchBits / dur.Seconds() / 1e6,
		})
	}
	for _, pt := range rep.Platforms {
		rep.MeetsRealTime[pt.Platform] = pt.Time <= 10*time.Millisecond
	}
	return rep, nil
}

// Accelerator is the public handle on the integrated FPGA sphere-decoder
// product (internal/core): decode batches, read hardware reports.
type Accelerator struct {
	inner *core.Accelerator
	cfg   mimo.Config
}

// Variant names for NewAccelerator.
const (
	VariantBaseline  = "baseline"
	VariantOptimized = "optimized"
)

// NewAccelerator builds an accelerator for cfg. variant is
// VariantBaseline or VariantOptimized.
func NewAccelerator(cfg Config, variant string) (*Accelerator, error) {
	mc, _, err := cfg.parse()
	if err != nil {
		return nil, err
	}
	var v fpga.Variant
	switch variant {
	case VariantBaseline:
		v = fpga.Baseline
	case VariantOptimized:
		v = fpga.Optimized
	default:
		return nil, fmt.Errorf("mimosd: unknown variant %q", variant)
	}
	inner, err := core.New(v, mc.Mod, mc.Tx, mc.Rx, core.Options{})
	if err != nil {
		return nil, err
	}
	return &Accelerator{inner: inner, cfg: mc}, nil
}

// HardwareReport summarizes the accelerator's static hardware profile.
type HardwareReport struct {
	Name         string
	FreqMHz      float64
	LUTFrac      float64
	FFFrac       float64
	DSPFrac      float64
	BRAMFrac     float64
	URAMFrac     float64
	Fits         bool
	PowerW       float64
	MaxPipelines int
}

// Hardware returns the design's resource/power profile (Tables I–II).
func (a *Accelerator) Hardware() HardwareReport {
	u := a.inner.Resources()
	lut, ff, dsp, bram, uram := u.Frac()
	return HardwareReport{
		Name:    a.inner.Name(),
		FreqMHz: u.FreqMHz,
		LUTFrac: lut, FFFrac: ff, DSPFrac: dsp, BRAMFrac: bram, URAMFrac: uram,
		Fits:         u.Fits(),
		PowerW:       a.inner.Power(),
		MaxPipelines: a.inner.Design().MaxPipelines(),
	}
}

// BatchResult is the outcome of Accelerator.DecodeBatch.
type BatchResult struct {
	// Detections holds one result per input link, in order.
	Detections []*Detection
	// SimulatedTime is the modeled FPGA wall time for the batch.
	SimulatedTime time.Duration
	// EnergyJ is the modeled energy.
	EnergyJ float64
	// MeetsRealTime reports the paper's 10 ms bound.
	MeetsRealTime bool
	// NodesExplored aggregates tree expansions over the batch.
	NodesExplored int64
	// Degraded reports whether any frame finished below exact quality.
	Degraded bool
	// QualityCounts maps quality names ("exact", "best-effort", "fallback")
	// to the number of frames that finished at that quality.
	QualityCounts map[string]int
}

// batchInputs converts links into the accelerator's input form.
func (a *Accelerator) batchInputs(links []*Link) ([]core.BatchInput, error) {
	if len(links) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrInvalidInput)
	}
	inputs := make([]core.BatchInput, len(links))
	for i, l := range links {
		if l == nil {
			return nil, fmt.Errorf("%w: link %d is nil", ErrInvalidInput, i)
		}
		hm, err := checkLinkInput(a.cfg, l.H, l.Y, l.NoiseVar)
		if err != nil {
			return nil, fmt.Errorf("link %d: %w", i, err)
		}
		inputs[i] = core.BatchInput{H: hm, Y: cmatrix.Vector(l.Y), NoiseVar: l.NoiseVar}
	}
	return inputs, nil
}

// BatchBudget bounds a whole DecodeBatchBudget call. Exhaustion never drops
// frames: overrunning work is cut at the budget and the remaining links are
// shed to the linear fallback detector, each flagged via Detection.Quality.
type BatchBudget struct {
	// Deadline bounds the modeled FPGA time of the batch; 0 = none.
	Deadline time.Duration
	// NodeBudget bounds total tree expansions across the batch; 0 = none.
	NodeBudget int64
}

// batchResultFrom converts a core batch report into the public form.
func (a *Accelerator) batchResultFrom(rep *core.BatchReport, name string) *BatchResult {
	cons := a.inner.Constellation()
	out := &BatchResult{
		SimulatedTime: rep.SimulatedTime,
		EnergyJ:       rep.EnergyJ,
		MeetsRealTime: rep.MeetsRealTime(),
		NodesExplored: rep.Counters.NodesExpanded,
		Degraded:      rep.Degraded,
		QualityCounts: rep.QualityCounts,
	}
	for _, res := range rep.Results {
		out.Detections = append(out.Detections, detectionFrom(res, cons, name))
	}
	return out
}

// DecodePolicy is the unified quality/cost control surface of the decode
// stack: strategy, norm, SNR-scaled initial radius, per-frame node budget,
// half-precision GEMM, or the linear-only escape hatch, as one comparable
// value. See core.DecodePolicy for field semantics; ParsePolicy and
// DecodePolicy.String round-trip the one canonical spelling shared by the
// sdserver flag, /v1/policy bodies, and sdbench study labels.
type DecodePolicy = core.DecodePolicy

// ParsePolicy parses the canonical DecodePolicy spelling ("default",
// "linear", "strategy=rvd-se,norm=linf", "radius-scale=2,max-nodes=4096,fp16",
// ...).
func ParsePolicy(s string) (DecodePolicy, error) { return core.ParsePolicy(s) }

// batchOptions is the resolved option set of one DecodeBatch call.
type batchOptions struct {
	budget   BatchBudget
	policy   *DecodePolicy
	fallback bool
}

// BatchOption configures one Accelerator.DecodeBatch call.
type BatchOption func(*batchOptions)

// WithBudget bounds the whole batch: exhaustion never drops frames —
// overrunning work is cut at the budget and remaining links are shed to the
// linear fallback detector, each flagged via Detection.Quality. Composes
// with WithPolicy: the batch budget caps whatever per-frame budget the
// policy sets.
func WithBudget(b BatchBudget) BatchOption {
	return func(o *batchOptions) { o.budget = b }
}

// WithPolicy decodes the batch under p instead of the accelerator's base
// configuration (core.WithPolicy semantics): a Linear policy skips the tree
// search entirely, everything else selects a policy-derived decoder, cached
// per accelerator.
func WithPolicy(p DecodePolicy) BatchOption {
	return func(o *batchOptions) { o.policy = &p }
}

// WithFallback decodes the batch with the linear fallback detector only (no
// tree search): every Detection carries Quality "fallback". This is the
// decision an overloaded deployment emits when it sheds a batch rather than
// queue it — linear-decoder cost, metric never worse than sliced ZF. It
// overrides WithBudget and WithPolicy.
func WithFallback() BatchOption {
	return func(o *batchOptions) { o.fallback = true }
}

// DecodeBatch decodes a batch of links on the simulated FPGA. Options select
// the batch mode (WithBudget, WithFallback); with none it is the plain
// exhaustive batch decode. The result always covers every link; frames cut
// by a budget carry Quality "best-effort" or "fallback" and are tallied in
// QualityCounts.
func (a *Accelerator) DecodeBatch(links []*Link, opts ...BatchOption) (*BatchResult, error) {
	var o batchOptions
	for _, opt := range opts {
		opt(&o)
	}
	inputs, err := a.batchInputs(links)
	if err != nil {
		return nil, err
	}
	var coreOpts []core.BatchOption
	name := a.inner.Name()
	if o.fallback {
		coreOpts = append(coreOpts, core.WithFallback())
		name += "+fallback"
	} else {
		if o.policy != nil {
			coreOpts = append(coreOpts, core.WithPolicy(*o.policy))
			if o.policy.Linear {
				name += "+fallback"
			}
		}
		if o.budget != (BatchBudget{}) {
			coreOpts = append(coreOpts, core.WithBudget(core.BatchBudget{
				Deadline:   o.budget.Deadline,
				NodeBudget: o.budget.NodeBudget,
			}))
		}
	}
	rep, err := a.inner.DecodeBatch(inputs, coreOpts...)
	if err != nil {
		if errors.Is(err, core.ErrInvalidInput) {
			return nil, fmt.Errorf("%w: %v", ErrInvalidInput, err)
		}
		return nil, err
	}
	return a.batchResultFrom(rep, name), nil
}

// DecodeBatchBudget decodes a batch under a batch-level budget.
//
// Deprecated: use DecodeBatch(links, WithBudget(budget)).
func (a *Accelerator) DecodeBatchBudget(links []*Link, budget BatchBudget) (*BatchResult, error) {
	return a.DecodeBatch(links, WithBudget(budget))
}

// DecodeBatchFallback decodes a batch with the linear fallback detector.
//
// Deprecated: use DecodeBatch(links, WithFallback()).
func (a *Accelerator) DecodeBatchFallback(links []*Link) (*BatchResult, error) {
	return a.DecodeBatch(links, WithFallback())
}

// SoftBatchResult is a BatchResult with per-link bit LLRs.
type SoftBatchResult struct {
	BatchResult
	// LLRs holds one slice per link (antenna-major, MSB-first; positive =
	// bit 0 more likely).
	LLRs [][]float64
}

// DecodeBatchSoft decodes a batch on the simulated FPGA with the list
// sphere decoder, returning exact hard decisions plus max-log LLRs and the
// modeled hardware cost of the (larger) list search.
func (a *Accelerator) DecodeBatchSoft(links []*Link, listSize int) (*SoftBatchResult, error) {
	inputs, err := a.batchInputs(links)
	if err != nil {
		return nil, err
	}
	rep, err := a.inner.DecodeBatchSoft(inputs, listSize)
	if err != nil {
		if errors.Is(err, core.ErrInvalidInput) {
			return nil, fmt.Errorf("%w: %v", ErrInvalidInput, err)
		}
		return nil, err
	}
	out := &SoftBatchResult{
		BatchResult: *a.batchResultFrom(&rep.BatchReport, a.inner.Name()+"+soft"),
		LLRs:        rep.LLRs,
	}
	return out, nil
}
